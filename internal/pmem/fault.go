package pmem

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
)

// This file implements deterministic crash-point fault injection: a
// simulated power failure triggered in the middle of an operation, at
// an exact persistence-primitive step, instead of only at quiescent
// cuts (Pool.Crash).
//
// Step counting. While a FaultPlan is armed, every primitive that can
// change the durable image or its crash behaviour counts one step:
// Store64, CAS64, Write, NTStore, Flush and Fence (each call is one
// step regardless of byte count; loads are not counted because the
// image before and after a load is identical). A transactional commit
// publish (htm) is bracketed by BeginAtomic/EndAtomic and counts as a
// single step at its start: real RTM makes a commit's visibility — and
// on eADR, durability — atomic, so a power cut can land before or
// after a transaction but never inside it. The irrevocable fallback
// path is raw stores and is deliberately NOT bracketed; its steps
// count individually, as on real hardware.
//
// Firing. When the armed step is reached, the pool applies exactly the
// semantics of Pool.Crash — under eADR every retired store survives,
// under ADR all dirty cachelines roll back to their media image — and
// then unwinds the victim goroutine with a crash sentinel panic. Wrap
// workload code in CatchCrash to turn the unwind into ErrInjectedCrash
// at the operation boundary. After firing, every further counted
// primitive (from any context) unwinds the same way, so concurrent
// operations cannot mutate the post-crash image; DisarmFault re-enables
// the pool for recovery.
//
// Concurrency. The cut is a single instant across every worker, but
// two cases need care. (1) A failure-atomic section open on another
// worker when the cut fires is drained first — its primitives complete
// and the whole section lands before the snapshot — because real RTM
// retires a commit atomically; the cut serialises before or after a
// concurrent commit, never inside it. (2) Workers spinning on volatile
// state (a stripe lock, a directory lock bit, a resize generation)
// whose holder unwound at the cut would otherwise spin forever; such
// loops poll CheckLive so they observe the power loss and unwind too.

// ErrInjectedCrash is returned by CatchCrash when an armed FaultPlan
// fired inside the guarded function.
var ErrInjectedCrash = errors.New("pmem: injected power failure")

// crashSignal is the panic value that unwinds the victim of an
// injected crash. It intentionally does not implement error: nothing
// should handle it except CatchCrash (or IsInjectedCrash in a
// recovery backstop that must re-panic it).
type crashSignal struct{}

// FaultPlan is one deterministic injected power failure. Arm it on a
// pool with ArmFault; the plan counts persistence-primitive steps and
// fires the crash just before the CrashAtStep-th step executes. A plan
// with CrashAtStep == 0 never fires and only counts (use Steps after a
// run to size an exhaustive sweep). Plans are single-use.
type FaultPlan struct {
	// CrashAtStep is the 1-based step at which the power cut fires;
	// the counted primitive itself never executes. 0 = count only.
	CrashAtStep int64

	count atomic.Int64
	fired atomic.Bool
	lost  atomic.Int64
}

// Steps returns the number of persistence-primitive steps counted so
// far (the total step count of the run, if the plan never fired).
func (fp *FaultPlan) Steps() int64 { return fp.count.Load() }

// Fired reports whether the injected crash has happened.
func (fp *FaultPlan) Fired() bool { return fp.fired.Load() }

// LinesLost returns the number of dirty cachelines rolled back when
// the crash fired (always 0 under eADR).
func (fp *FaultPlan) LinesLost() int { return int(fp.lost.Load()) }

// ArmFault installs a fault plan on the pool. Only one plan can be
// armed at a time.
func (p *Pool) ArmFault(fp *FaultPlan) {
	if fp == nil {
		panic("pmem: ArmFault(nil)")
	}
	if !p.fault.CompareAndSwap(nil, fp) {
		panic("pmem: a FaultPlan is already armed")
	}
}

// DisarmFault removes the armed plan (after a fired crash, this is
// what makes the pool usable again — for Recover) and returns it, or
// nil if none was armed.
func (p *Pool) DisarmFault() *FaultPlan {
	return p.fault.Swap(nil)
}

// FaultArmed reports whether a fault plan is currently armed.
func (p *Pool) FaultArmed() bool { return p.fault.Load() != nil }

// step performs the fault-injection bookkeeping for one persistence
// primitive, firing the armed crash when its step is reached.
func (p *Pool) step(c *Ctx) {
	fp := p.fault.Load()
	if fp == nil {
		return
	}
	if c.atomicDepth > 0 {
		// Inside a failure-atomic section (counted at its start). The
		// section's primitives never observe the cut — not even one
		// fired concurrently by another worker: the firing context
		// drains open sections before it snapshots, so a commit
		// publish retires whole or not at all.
		return
	}
	if fp.fired.Load() {
		// The power is already off: nothing executes after the cut.
		panic(crashSignal{})
	}
	if n := fp.count.Add(1); fp.CrashAtStep > 0 && n == fp.CrashAtStep {
		fp.fired.Store(true)
		// Let in-flight failure-atomic sections finish publishing
		// before the cut takes effect: hardware RTM retires a commit
		// atomically, so a cut racing with a commit on another core
		// serialises after it, never inside it. fired is already set,
		// so no new section (or primitive) can start. A section whose
		// own counted step fired (atomicPending) is the victim, not a
		// survivor — never wait on it.
		self := int64(0)
		if c.atomicPending {
			self = 1
		}
		for p.atomicOpen.Load() > self {
			runtime.Gosched()
		}
		mp := p.media.Load()
		fp.lost.Store(int64(p.cache.crash(p, p.cfg.Mode, mp)))
		p.xpb.reset()
		p.applyMediaFaults(mp)
		panic(crashSignal{})
	}
}

// CheckLive panics with the crash sentinel if an armed fault has
// fired. Loads are not counted steps, and spin loops waiting on
// volatile state count none either — a worker parked on a lock whose
// holder will never release it (because the holder unwound at the
// cut) must poll CheckLive so it observes the power loss instead of
// spinning forever.
func (p *Pool) CheckLive() {
	if fp := p.fault.Load(); fp != nil && fp.fired.Load() {
		panic(crashSignal{})
	}
}

// BeginAtomic opens a failure-atomic section on behalf of worker c:
// the section counts as one fault-injection step at this call (an
// injected crash can land before it, leaving none of the section's
// stores in the image) and the primitives inside it count none (a
// crash can never land between them). Used by the htm package for the
// commit publish, mirroring hardware RTM's all-or-nothing commit.
// Sections may nest.
func (p *Pool) BeginAtomic(c *Ctx) {
	if c.atomicDepth == 0 {
		// Register before the counted step: once past its step the
		// section is visible to a concurrently-firing fault, which
		// drains it before snapshotting (see step). If the crash
		// lands on the section's own step, unwind the registration.
		p.atomicOpen.Add(1)
		c.atomicPending = true
		defer func() {
			c.atomicPending = false
			if r := recover(); r != nil {
				if c.atomicDepth == 0 {
					p.atomicOpen.Add(-1)
				}
				panic(r)
			}
		}()
	}
	p.step(c)
	c.atomicDepth++
}

// EndAtomic closes the innermost failure-atomic section.
func (p *Pool) EndAtomic(c *Ctx) {
	if c.atomicDepth == 0 {
		panic("pmem: EndAtomic without BeginAtomic")
	}
	c.atomicDepth--
	if c.atomicDepth == 0 {
		p.atomicOpen.Add(-1)
	}
}

// CatchCrash runs fn, converting an injected-crash unwind into
// ErrInjectedCrash. It is the operation-boundary recover point: wrap
// the workload (not individual pool calls) so the victim operation
// unwinds cleanly and the caller can proceed to recovery.
func CatchCrash(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if IsInjectedCrash(r) {
				err = ErrInjectedCrash
				return
			}
			panic(r)
		}
	}()
	return fn()
}

// IsInjectedCrash reports whether a recovered panic value is an
// injected-crash unwind. Recovery backstops that convert panics into
// errors must re-panic such values so CatchCrash still sees them.
func IsInjectedCrash(r any) bool {
	_, ok := r.(crashSignal)
	return ok
}

// ErrPoisoned matches (via errors.Is) any AccessError caused by a read
// of a poisoned XPLine.
var ErrPoisoned = errors.New("pmem: read of poisoned media")

// AccessError is the panic value raised by the pool on an
// out-of-bounds or misaligned access, and on a read overlapping a
// poisoned XPLine. It is a typed value (rather than a bare string) so
// recovery code can convert stray accesses on corrupted images into
// descriptive errors, and so read paths can distinguish uncorrectable
// media (Poisoned) from program bugs.
type AccessError struct {
	Addr, Size uint64
	PoolSize   uint64
	Misaligned bool
	Poisoned   bool
}

func (e AccessError) Error() string {
	if e.Poisoned {
		return fmt.Sprintf("pmem: uncorrectable media error (poisoned XPLine) at %#x", e.Addr)
	}
	if e.Misaligned {
		return fmt.Sprintf("pmem: unaligned 64-bit access at %#x", e.Addr)
	}
	return fmt.Sprintf("pmem: access [%#x,%#x) out of pool bounds %#x", e.Addr, e.Addr+e.Size, e.PoolSize)
}

// Is makes errors.Is(err, ErrPoisoned) match poisoned AccessErrors.
func (e AccessError) Is(target error) bool {
	return target == ErrPoisoned && e.Poisoned
}
