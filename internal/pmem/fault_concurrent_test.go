package pmem

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCutDrainsAtomicSection pins the multi-worker firing
// contract: a failure-atomic section that passed its counted step
// before another worker fired the cut must complete its publish in
// full — the cut serialises after the section, never inside it.
// Before the drain existed, worker B's stores below would unwind
// mid-publish, tearing the "all-or-nothing" commit and leaking any
// volatile locks its caller held.
func TestConcurrentCutDrainsAtomicSection(t *testing.T) {
	p := New(Config{PoolSize: 1 << 20, CacheSize: 1 << 16, Mode: EADR})
	cb := p.NewCtx()
	ca := p.NewCtx()

	// Step 1 is B's BeginAtomic; step 2 is A's store, which fires.
	fp := &FaultPlan{CrashAtStep: 2}
	p.ArmFault(fp)

	inside := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	var aerr, berr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		berr = CatchCrash(func() error {
			p.BeginAtomic(cb)
			close(inside)
			// Hold the section open until main releases us, giving A
			// time to fire the cut and enter its drain.
			<-release
			for i := uint64(0); i < 8; i++ {
				p.Store64(cb, 256+8*i, i+1)
			}
			p.EndAtomic(cb)
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		<-inside
		aerr = CatchCrash(func() error {
			p.Store64(ca, 0, 1)
			return nil
		})
	}()
	<-inside
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if !errors.Is(aerr, ErrInjectedCrash) {
		t.Fatalf("firing worker: got %v, want ErrInjectedCrash", aerr)
	}
	if berr != nil {
		t.Fatalf("in-flight atomic section was torn by the concurrent cut: %v", berr)
	}
	if !fp.Fired() {
		t.Fatal("fault never fired")
	}
	p.DisarmFault()
	for i := uint64(0); i < 8; i++ {
		if got := p.Load64(cb, 256+8*i); got != i+1 {
			t.Fatalf("word %d: got %d, want %d — section did not retire whole", i, got, i+1)
		}
	}
}

// TestCheckLiveObservesCut: CheckLive is a no-op until an armed fault
// fires, then unwinds with the crash sentinel — the hook volatile spin
// loops use so a waiter whose lock holder died at the cut dies too.
func TestCheckLiveObservesCut(t *testing.T) {
	p := New(Config{PoolSize: 1 << 20, CacheSize: 1 << 16, Mode: EADR})
	c := p.NewCtx()
	p.CheckLive() // no plan armed: must not panic

	fp := &FaultPlan{CrashAtStep: 1}
	p.ArmFault(fp)
	p.CheckLive() // armed but not fired: must not panic

	err := CatchCrash(func() error {
		p.Store64(c, 0, 1)
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("arming store: got %v, want ErrInjectedCrash", err)
	}
	err = CatchCrash(func() error {
		p.CheckLive()
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("CheckLive after the cut: got %v, want ErrInjectedCrash", err)
	}

	p.DisarmFault()
	p.CheckLive() // disarmed for recovery: must not panic
}
