package pmem

import (
	"errors"
	"testing"
)

func faultTestPool(mode Mode) *Pool {
	return New(Config{
		PoolSize:  1 << 20,
		Mode:      mode,
		CacheSize: 1 << 16,
	})
}

// TestFaultStepCounting verifies that a count-only plan (CrashAtStep
// 0) counts exactly one step per persistence primitive and never
// fires.
func TestFaultStepCounting(t *testing.T) {
	p := faultTestPool(EADR)
	c := p.NewCtx()
	fp := &FaultPlan{}
	p.ArmFault(fp)

	p.Store64(c, 64, 1)            // 1
	p.CAS64(c, 64, 1, 2)           // 2
	p.Write(c, 128, []byte{1, 2})  // 3
	p.NTStore(c, 256, []byte{3})   // 4
	p.Flush(c, 64, 8)              // 5
	p.Fence(c)                     // 6
	p.NTStore(c, 512, nil)         // n==0: not a step
	_ = p.Load64(c, 64)            // loads are not steps
	p.Flush(c, 64, 0)              // size==0: not a step
	if got := fp.Steps(); got != 6 {
		t.Fatalf("Steps() = %d, want 6", got)
	}
	if fp.Fired() {
		t.Fatal("count-only plan fired")
	}
	if p.DisarmFault() != fp {
		t.Fatal("DisarmFault returned wrong plan")
	}
	if p.FaultArmed() {
		t.Fatal("still armed after DisarmFault")
	}
}

// TestFaultFiresAtStep checks that the crash fires before the Nth
// primitive executes: stores 1..N-1 land, store N does not.
func TestFaultFiresAtStep(t *testing.T) {
	p := faultTestPool(EADR)
	c := p.NewCtx()
	fp := &FaultPlan{CrashAtStep: 3}
	p.ArmFault(fp)

	err := CatchCrash(func() error {
		p.Store64(c, 64, 11)  // step 1
		p.Store64(c, 72, 22)  // step 2
		p.Store64(c, 80, 33)  // step 3: crash fires, store suppressed
		t.Fatal("unreachable: crash did not unwind")
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("CatchCrash err = %v, want ErrInjectedCrash", err)
	}
	if !fp.Fired() {
		t.Fatal("plan did not record firing")
	}
	p.DisarmFault()

	c2 := p.NewCtx()
	if got := p.Load64(c2, 64); got != 11 {
		t.Errorf("word at 64 = %d, want 11 (eADR retains retired stores)", got)
	}
	if got := p.Load64(c2, 72); got != 22 {
		t.Errorf("word at 72 = %d, want 22", got)
	}
	if got := p.Load64(c2, 80); got != 0 {
		t.Errorf("word at 80 = %d, want 0 (crash fires before the step executes)", got)
	}
}

// TestFaultADRRollsBack checks that under ADR an injected crash rolls
// unflushed dirty lines back to their media image while flushed data
// survives.
func TestFaultADRRollsBack(t *testing.T) {
	p := faultTestPool(ADR)
	c := p.NewCtx()

	// Durable prefix, written and flushed before arming.
	p.Store64(c, 64, 7)
	p.Flush(c, 64, 8)
	p.Fence(c)

	fp := &FaultPlan{CrashAtStep: 2}
	p.ArmFault(fp)
	err := CatchCrash(func() error {
		p.Store64(c, 128, 99) // step 1: dirty, never flushed
		p.Store64(c, 192, 55) // step 2: crash
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	if fp.LinesLost() == 0 {
		t.Error("ADR crash lost no lines, want at least the dirty line at 128")
	}
	p.DisarmFault()

	c2 := p.NewCtx()
	if got := p.Load64(c2, 64); got != 7 {
		t.Errorf("flushed word = %d, want 7", got)
	}
	if got := p.Load64(c2, 128); got != 0 {
		t.Errorf("unflushed word = %d, want 0 (ADR rolls dirty lines back)", got)
	}
}

// TestFaultPostCrashAccessesUnwind verifies that once the plan has
// fired, any further persistence primitive (e.g. from a concurrent
// worker) unwinds instead of mutating the post-crash image.
func TestFaultPostCrashAccessesUnwind(t *testing.T) {
	p := faultTestPool(EADR)
	c := p.NewCtx()
	p.ArmFault(&FaultPlan{CrashAtStep: 1})
	if err := CatchCrash(func() error { p.Store64(c, 64, 1); return nil }); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("first op err = %v", err)
	}
	err := CatchCrash(func() error { p.Store64(c, 72, 2); return nil })
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-crash store err = %v, want ErrInjectedCrash", err)
	}
	p.DisarmFault()
	c2 := p.NewCtx()
	if got := p.Load64(c2, 72); got != 0 {
		t.Errorf("post-crash store mutated the image: %d", got)
	}
}

// TestFaultAtomicSection verifies that a failure-atomic section counts
// one step at BeginAtomic and none inside, so a crash can land before
// the section but never within it.
func TestFaultAtomicSection(t *testing.T) {
	p := faultTestPool(EADR)
	c := p.NewCtx()
	fp := &FaultPlan{}
	p.ArmFault(fp)

	p.BeginAtomic(c) // step 1
	p.Store64(c, 64, 1)
	p.Store64(c, 72, 2)
	p.Store64(c, 80, 3)
	p.EndAtomic(c)
	p.Store64(c, 88, 4) // step 2
	if got := fp.Steps(); got != 2 {
		t.Fatalf("Steps() = %d, want 2 (publish counts once)", got)
	}
	p.DisarmFault()

	// A crash at the atomic section's step leaves all of its stores out.
	p2 := faultTestPool(EADR)
	c2 := p2.NewCtx()
	p2.ArmFault(&FaultPlan{CrashAtStep: 1})
	err := CatchCrash(func() error {
		p2.BeginAtomic(c2)
		p2.Store64(c2, 64, 1)
		p2.Store64(c2, 72, 2)
		p2.EndAtomic(c2)
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v", err)
	}
	p2.DisarmFault()
	c3 := p2.NewCtx()
	if p2.Load64(c3, 64) != 0 || p2.Load64(c3, 72) != 0 {
		t.Error("crash landed inside a failure-atomic section: partial publish visible")
	}
}

// TestCrashQuiescencePanics checks the loud failure when Crash is
// called with an operation in flight and no plan armed.
func TestCrashQuiescencePanics(t *testing.T) {
	p := faultTestPool(EADR)
	c := p.NewCtx()
	c.BeginOp()
	if p.InFlightOps() != 1 {
		t.Fatalf("InFlightOps = %d, want 1", p.InFlightOps())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Crash() mid-operation without a FaultPlan did not panic")
			}
		}()
		p.Crash()
	}()
	c.EndOp()
	if p.InFlightOps() != 0 {
		t.Fatalf("InFlightOps = %d after EndOp, want 0", p.InFlightOps())
	}
	// Quiescent Crash still works.
	p.Crash()
	// Mid-operation Crash with a plan armed is allowed (routed through
	// the injector's bookkeeping by the caller).
	c.BeginOp()
	p.ArmFault(&FaultPlan{})
	p.Crash()
	p.DisarmFault()
	c.EndOp()
}

// TestCatchCrashPassthrough verifies CatchCrash re-panics foreign
// panics and passes through ordinary errors.
func TestCatchCrashPassthrough(t *testing.T) {
	want := errors.New("boom")
	if err := CatchCrash(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	defer func() {
		if r := recover(); r != "other" {
			t.Fatalf("recovered %v, want foreign panic to pass through", r)
		}
	}()
	_ = CatchCrash(func() error { panic("other") })
}

// TestAccessErrorTyped verifies out-of-bounds and misaligned accesses
// panic with the typed AccessError recovery code depends on.
func TestAccessErrorTyped(t *testing.T) {
	p := faultTestPool(EADR)
	c := p.NewCtx()
	catch := func(fn func()) (ae AccessError, ok bool) {
		defer func() {
			r := recover()
			ae, ok = r.(AccessError)
		}()
		fn()
		return
	}
	if ae, ok := catch(func() { p.Load64(c, p.Size()) }); !ok || ae.Misaligned {
		t.Errorf("OOB load: got (%v, %v), want in-bounds AccessError", ae, ok)
	}
	if ae, ok := catch(func() { p.Store64(c, 3, 1) }); !ok || !ae.Misaligned {
		t.Errorf("misaligned store: got (%v, %v), want Misaligned AccessError", ae, ok)
	}
	if ae, ok := catch(func() { p.Read(c, p.Size()-4, make([]byte, 8)) }); !ok {
		t.Errorf("OOB read: got (%v, %v)", ae, ok)
	}
}
