package pmem

import (
	"sync/atomic"
)

// This file implements deterministic media-fault injection: unlike the
// power-failure injector (fault.go), which only decides *which* dirty
// cachelines survive a crash, the media injector corrupts the surviving
// image the way real DCPMM fails — single-bit rot in media words, torn
// 8-byte interleavings inside a cacheline write-back that was cut by
// the power failure, and poisoned XPLines whose reads surface as
// machine checks (here: a typed AccessError panic) instead of data.
//
// All corruption is derived from a seed, so a failing trial replays
// exactly. Faults are applied when the pool crashes — either a
// quiescent Pool.Crash or the firing of an armed FaultPlan — which is
// when real media damage becomes visible (the pre-crash run never read
// the damaged lines).

// MediaFaultPlan describes one deterministic batch of media faults,
// applied at the next crash of the pool it is armed on (ArmMediaFault).
// Plans are single-use.
type MediaFaultPlan struct {
	// Seed drives every random choice (fault addresses, bit positions,
	// torn-word masks). Two runs with equal seeds inject identically.
	Seed uint64

	// BitFlips is the number of single-bit flips applied to media
	// words after the crash's persistence-domain semantics.
	BitFlips int

	// TornLines bounds how many dirty cachelines are torn instead of
	// cleanly rolled back when the crash happens in ADR mode: a torn
	// line keeps a pseudorandom subset of its new 8-byte words and
	// rolls the rest back, modelling a write-back cut mid-line. Under
	// eADR the reserve energy completes every write-back, so torn
	// injection is honestly a no-op (0 lines torn).
	TornLines int

	// PoisonLines is the number of XPLines marked poisoned: every read
	// overlapping one panics with AccessError{Poisoned: true} until a
	// store overwrites (and thereby clears) the line.
	PoisonLines int

	// Frames, when non-empty, restricts bit flips and poison to the
	// given XPLine-aligned 256-byte frames (e.g. the index's segment
	// addresses, via core.Index.SegmentAddrs). Empty targets the whole
	// pool past the first 4 KiB of allocator metadata.
	Frames []uint64

	applied atomic.Bool
	rng     uint64
	tornCut int
	// injected counts what was actually applied; merged into the
	// pool's Stats after the crash.
	injected Stats
}

// splitmix64 is the seeded PRNG behind every media-fault choice.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Injected returns the per-kind counts of faults actually applied
// (zero until the crash happens).
func (mp *MediaFaultPlan) Injected() Stats { return mp.injected }

// Applied reports whether the plan's faults have been injected.
func (mp *MediaFaultPlan) Applied() bool { return mp.applied.Load() }

// tearMask returns, for one dirty line about to be rolled back under
// ADR, the 8-bit mask of 8-byte words that keep their NEW value (bit i
// = word i survives). A zero mask means the line rolls back cleanly.
// The mask is forced to mix old and new words, so every consumed torn
// budget actually tears.
func (mp *MediaFaultPlan) tearMask() uint64 {
	if mp == nil || mp.tornCut >= mp.TornLines {
		return 0
	}
	mp.tornCut++
	mp.injected.MediaTornLines++
	m := splitmix64(&mp.rng) & 0xFF
	if m == 0 || m == 0xFF {
		m = 0x0F
	}
	return m
}

// pickWordAddr chooses the media word for one bit flip.
func (mp *MediaFaultPlan) pickWordAddr(p *Pool) uint64 {
	r := splitmix64(&mp.rng)
	if len(mp.Frames) > 0 {
		frame := mp.Frames[r%uint64(len(mp.Frames))]
		return frame + splitmix64(&mp.rng)%(XPLineSize/8)*8
	}
	lo := uint64(4096)
	return lo + r%((p.cfg.PoolSize-lo)/8)*8
}

// pickLine chooses the XPLine base for one poisoned line.
func (mp *MediaFaultPlan) pickLine(p *Pool) uint64 {
	r := splitmix64(&mp.rng)
	if len(mp.Frames) > 0 {
		return mp.Frames[r%uint64(len(mp.Frames))] &^ uint64(XPLineSize-1)
	}
	lo := uint64(4096)
	return lo + r%((p.cfg.PoolSize-lo)/XPLineSize)*XPLineSize
}

// ArmMediaFault installs a media-fault plan, applied at the pool's
// next crash. Only one plan can be armed at a time.
func (p *Pool) ArmMediaFault(mp *MediaFaultPlan) {
	if mp == nil {
		panic("pmem: ArmMediaFault(nil)")
	}
	mp.rng = mp.Seed
	if !p.media.CompareAndSwap(nil, mp) {
		panic("pmem: a MediaFaultPlan is already armed")
	}
}

// DisarmMediaFault removes the armed media plan and returns it (nil if
// none). Already-applied damage — flipped words, poisoned lines —
// stays in the media, exactly like real bit rot.
func (p *Pool) DisarmMediaFault() *MediaFaultPlan {
	return p.media.Swap(nil)
}

// MediaFaultArmed reports whether a media plan is currently armed.
func (p *Pool) MediaFaultArmed() bool { return p.media.Load() != nil }

// applyMediaFaults injects the plan's bit flips and poisoned lines
// into the post-crash image. Torn lines were already applied during
// the cache's crash rollback; their counts merge here.
func (p *Pool) applyMediaFaults(mp *MediaFaultPlan) {
	if mp == nil || mp.applied.Swap(true) {
		return
	}
	for i := 0; i < mp.BitFlips; i++ {
		addr := mp.pickWordAddr(p)
		bit := splitmix64(&mp.rng) % 64
		w := atomic.LoadUint64(&p.words[addr/8])
		atomic.StoreUint64(&p.words[addr/8], w^uint64(1)<<bit)
		mp.injected.MediaBitFlips++
	}
	for i := 0; i < mp.PoisonLines; i++ {
		p.poisonLine(mp.pickLine(p))
		mp.injected.MediaPoisonedLines++
	}
	p.mu.Lock()
	p.injected = p.injected.Add(mp.injected)
	p.mu.Unlock()
}

// poisonLine marks the XPLine at base (aligned down) poisoned.
func (p *Pool) poisonLine(base uint64) {
	base &^= uint64(XPLineSize - 1)
	p.poisonMu.Lock()
	if p.poison == nil {
		p.poison = make(map[uint64]struct{})
	}
	if _, ok := p.poison[base]; !ok {
		p.poison[base] = struct{}{}
		p.poisonN.Add(1)
	}
	p.poisonMu.Unlock()
}

// PoisonLine poisons the XPLine containing addr directly (test and
// fsck-torture hook; equivalent to one PoisonLines pick landing there).
func (p *Pool) PoisonLine(addr uint64) { p.poisonLine(addr) }

// PoisonedLines returns the number of currently poisoned XPLines.
func (p *Pool) PoisonedLines() int { return int(p.poisonN.Load()) }

// checkPoison panics with a poisoned AccessError if [addr, addr+size)
// overlaps a poisoned XPLine. The fast path is one atomic load.
func (p *Pool) checkPoison(c *Ctx, addr, size uint64) {
	if p.poisonN.Load() == 0 || size == 0 {
		return
	}
	first := addr &^ uint64(XPLineSize - 1)
	last := (addr + size - 1) &^ uint64(XPLineSize-1)
	p.poisonMu.Lock()
	for line := first; line <= last; line += XPLineSize {
		if _, ok := p.poison[line]; ok {
			p.poisonMu.Unlock()
			c.stats.PoisonReads++
			panic(AccessError{Addr: line, Size: XPLineSize, Poisoned: true})
		}
	}
	p.poisonMu.Unlock()
}

// clearPoison heals every poisoned XPLine overlapping [addr,
// addr+size): a store overwrites the uncorrectable data, which is how
// real PM clears poison.
func (p *Pool) clearPoison(addr, size uint64) {
	if p.poisonN.Load() == 0 || size == 0 {
		return
	}
	first := addr &^ uint64(XPLineSize - 1)
	last := (addr + size - 1) &^ uint64(XPLineSize-1)
	p.poisonMu.Lock()
	for line := first; line <= last; line += XPLineSize {
		if _, ok := p.poison[line]; ok {
			delete(p.poison, line)
			p.poisonN.Add(-1)
		}
	}
	p.poisonMu.Unlock()
}
