package pmem

import (
	"errors"
	"testing"
)

func mediaTestPool(mode Mode) *Pool {
	return New(Config{
		PoolSize:  1 << 20,
		Mode:      mode,
		CacheSize: 1 << 16,
	})
}

// snapshotWords copies the raw media image (no cache simulation).
func snapshotWords(p *Pool) []uint64 {
	out := make([]uint64, len(p.words))
	copy(out, p.words)
	return out
}

// TestMediaBitFlipsDeterministic checks that bit flips are applied at
// the crash, damage exactly BitFlips single bits, stay inside the
// requested frames, and replay identically from the same seed.
func TestMediaBitFlipsDeterministic(t *testing.T) {
	run := func(seed uint64) ([]uint64, Stats) {
		p := mediaTestPool(EADR)
		c := p.NewCtx()
		for a := uint64(XPLineSize); a < 8*XPLineSize; a += 8 {
			p.Store64(c, a, ^uint64(0))
		}
		frames := []uint64{1 * XPLineSize, 3 * XPLineSize, 5 * XPLineSize}
		mp := &MediaFaultPlan{Seed: seed, BitFlips: 7, Frames: frames}
		p.ArmMediaFault(mp)
		before := snapshotWords(p)
		p.Crash()
		if !mp.Applied() {
			t.Fatal("plan not applied at Crash")
		}
		after := snapshotWords(p)
		flipped := 0
		for i := range before {
			if d := before[i] ^ after[i]; d != 0 {
				if d&(d-1) != 0 {
					t.Fatalf("word %d damaged by %d bits, want single-bit flips", i, popcount(d))
				}
				addr := uint64(i) * 8
				inFrame := false
				for _, f := range frames {
					if addr >= f && addr < f+XPLineSize {
						inFrame = true
					}
				}
				if !inFrame {
					t.Fatalf("flip at %#x outside requested frames", addr)
				}
				flipped++
			}
		}
		// Flips can collide on the same bit (flip twice = no damage),
		// but the injected count must be exact.
		if got := mp.Injected().MediaBitFlips; got != 7 {
			t.Fatalf("Injected().MediaBitFlips = %d, want 7", got)
		}
		if flipped == 0 {
			t.Fatal("no media words damaged")
		}
		return after, p.Stats()
	}
	a1, s1 := run(42)
	a2, _ := run(42)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed produced different damage at word %d", i)
		}
	}
	a3, _ := run(43)
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical damage")
	}
	if s1.MediaBitFlips != 7 {
		t.Fatalf("Stats().MediaBitFlips = %d, want 7", s1.MediaBitFlips)
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// TestMediaPoisonReadPanicsAndStoreHeals checks the poisoned-XPLine
// life cycle: reads panic with a typed, errors.Is-able AccessError;
// stores overwrite and heal; counters record both sides.
func TestMediaPoisonReadPanicsAndStoreHeals(t *testing.T) {
	p := mediaTestPool(EADR)
	c := p.NewCtx()
	p.Store64(c, 2*XPLineSize+8, 77)
	p.PoisonLine(2*XPLineSize + 8)
	if got := p.PoisonedLines(); got != 1 {
		t.Fatalf("PoisonedLines = %d, want 1", got)
	}

	readPoisoned := func(fn func()) (ae AccessError, ok bool) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			ae, ok = r.(AccessError)
			if !ok {
				panic(r)
			}
		}()
		fn()
		return
	}

	ae, ok := readPoisoned(func() { _ = p.Load64(c, 2*XPLineSize) })
	if !ok || !ae.Poisoned {
		t.Fatalf("Load64 of poisoned line: got (%v, %v), want poisoned AccessError", ae, ok)
	}
	if !errors.Is(error(ae), ErrPoisoned) {
		t.Fatal("errors.Is(AccessError{Poisoned}, ErrPoisoned) = false")
	}
	if _, ok := readPoisoned(func() { p.Read(c, 2*XPLineSize+100, make([]byte, 4)) }); !ok {
		t.Fatal("Read overlapping poisoned line did not machine-check")
	}
	if _, ok := readPoisoned(func() { p.CAS64(c, 2*XPLineSize, 0, 1) }); !ok {
		t.Fatal("CAS64 on poisoned line did not machine-check")
	}
	// Neighbouring lines are unaffected.
	if _, ok := readPoisoned(func() { _ = p.Load64(c, 3*XPLineSize) }); ok {
		t.Fatal("read of clean neighbouring line machine-checked")
	}

	// A store overwrites the uncorrectable data and clears the poison.
	p.Store64(c, 2*XPLineSize+16, 5)
	if got := p.PoisonedLines(); got != 0 {
		t.Fatalf("PoisonedLines after healing store = %d, want 0", got)
	}
	if got := p.Load64(c, 2*XPLineSize+16); got != 5 {
		t.Fatalf("healed line reads %d, want 5", got)
	}

	s := p.Stats()
	if s.PoisonReads != 3 {
		t.Fatalf("Stats().PoisonReads = %d, want 3", s.PoisonReads)
	}
}

// TestMediaPoisonInjectedAtCrash checks that PoisonLines from an armed
// plan land at the crash, within the requested frames.
func TestMediaPoisonInjectedAtCrash(t *testing.T) {
	p := mediaTestPool(EADR)
	mp := &MediaFaultPlan{Seed: 7, PoisonLines: 2, Frames: []uint64{4 * XPLineSize, 6 * XPLineSize}}
	p.ArmMediaFault(mp)
	p.Crash()
	if got := p.PoisonedLines(); got == 0 || got > 2 {
		t.Fatalf("PoisonedLines = %d, want 1..2 (picks may collide)", got)
	}
	if got := mp.Injected().MediaPoisonedLines; got != 2 {
		t.Fatalf("Injected().MediaPoisonedLines = %d, want 2", got)
	}
	if p.DisarmMediaFault() != mp {
		t.Fatal("DisarmMediaFault returned wrong plan")
	}
	if p.MediaFaultArmed() {
		t.Fatal("still armed after disarm")
	}
}

// TestMediaTornLinesADR checks that under ADR a torn dirty line keeps a
// strict mix of new and rolled-back words, and that eADR (which has no
// rollback to tear) honestly injects nothing.
func TestMediaTornLinesADR(t *testing.T) {
	p := mediaTestPool(ADR)
	c := p.NewCtx()
	// Persist an old image of one cacheline, then dirty it without
	// flushing so the crash must roll it back.
	base := uint64(8 * CachelineSize)
	for i := uint64(0); i < CachelineSize/8; i++ {
		p.Store64(c, base+i*8, 100+i)
	}
	p.Flush(c, base, CachelineSize)
	p.Fence(c)
	for i := uint64(0); i < CachelineSize/8; i++ {
		p.Store64(c, base+i*8, 200+i)
	}

	mp := &MediaFaultPlan{Seed: 9, TornLines: 1}
	p.ArmMediaFault(mp)
	p.Crash()
	if got := mp.Injected().MediaTornLines; got != 1 {
		t.Fatalf("Injected().MediaTornLines = %d, want 1", got)
	}
	oldW, newW := 0, 0
	for i := uint64(0); i < CachelineSize/8; i++ {
		switch got := p.Load64(c, base+i*8); got {
		case 100 + i:
			oldW++
		case 200 + i:
			newW++
		default:
			t.Fatalf("word %d reads %d, want old(%d) or new(%d)", i, got, 100+i, 200+i)
		}
	}
	if oldW == 0 || newW == 0 {
		t.Fatalf("torn line not mixed: %d old words, %d new words", oldW, newW)
	}

	// eADR: reserve energy completes every write-back; nothing tears.
	pe := mediaTestPool(EADR)
	ce := pe.NewCtx()
	pe.Store64(ce, base, 1)
	mpe := &MediaFaultPlan{Seed: 9, TornLines: 4}
	pe.ArmMediaFault(mpe)
	pe.Crash()
	if got := mpe.Injected().MediaTornLines; got != 0 {
		t.Fatalf("eADR tore %d lines, want 0", got)
	}
	if got := pe.Load64(ce, base); got != 1 {
		t.Fatalf("eADR store lost: reads %d, want 1", got)
	}
}

// TestMediaFaultsApplyWhenFaultPlanFires checks that media damage also
// lands when the crash comes from an armed FaultPlan rather than a
// quiescent Pool.Crash.
func TestMediaFaultsApplyWhenFaultPlanFires(t *testing.T) {
	p := mediaTestPool(EADR)
	c := p.NewCtx()
	mp := &MediaFaultPlan{Seed: 3, PoisonLines: 1, Frames: []uint64{2 * XPLineSize}}
	p.ArmMediaFault(mp)
	fp := &FaultPlan{CrashAtStep: 2}
	p.ArmFault(fp)
	err := CatchCrash(func() error {
		p.Store64(c, 64, 1)
		p.Store64(c, 72, 2)
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("CatchCrash = %v, want ErrInjectedCrash", err)
	}
	if !mp.Applied() {
		t.Fatal("media plan not applied when FaultPlan fired")
	}
	if got := p.PoisonedLines(); got != 1 {
		t.Fatalf("PoisonedLines = %d, want 1", got)
	}
}
