package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a simulated persistent-memory device fronted by a simulated
// CPU cache. Addresses are byte offsets into the pool; address 0 is
// reserved as the nil pointer and 64-bit accesses must be 8-byte
// aligned (the backing store is word-granular and word accesses are
// atomic, like real hardware).
type Pool struct {
	cfg   Config
	words []uint64
	cache *cache
	xpb   *xpbuffer

	mu      sync.Mutex
	ctxs    map[*Ctx]struct{}
	retired Stats
	// injected accumulates the media-fault counters of applied
	// MediaFaultPlans (guarded by mu).
	injected Stats

	// fault is the armed crash-injection plan (fault.go); inFlight
	// counts operations currently executing between Ctx.BeginOp and
	// Ctx.EndOp, so Crash can refuse non-quiescent power cuts that do
	// not go through a FaultPlan. atomicOpen counts failure-atomic
	// sections currently open across all workers: a firing fault
	// drains them before snapshotting, so a concurrent cut can never
	// tear a transactional commit publish.
	fault      atomic.Pointer[FaultPlan]
	inFlight   atomic.Int64
	atomicOpen atomic.Int64

	// media is the armed media-fault plan (media.go); poison is the
	// set of poisoned XPLine bases, with poisonN as its lock-free
	// emptiness check on the read fast path.
	media    atomic.Pointer[MediaFaultPlan]
	poisonMu sync.Mutex
	poison   map[uint64]struct{}
	poisonN  atomic.Int64
}

// New creates a simulated PM pool. The pool's content starts zeroed
// (as after an initial provisioning of the DIMMs).
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:   cfg,
		words: make([]uint64, cfg.PoolSize/8),
		ctxs:  make(map[*Ctx]struct{}),
	}
	p.cache = newCache(cfg)
	p.xpb = newXPBuffer(cfg.XPBufferLines)
	return p
}

// Config returns the pool's configuration (with defaults applied).
func (p *Pool) Config() Config { return p.cfg }

// Size returns the pool capacity in bytes.
func (p *Pool) Size() uint64 { return p.cfg.PoolSize }

// NewCtx returns a fresh per-worker context.
func (p *Pool) NewCtx() *Ctx {
	c := &Ctx{pool: p}
	p.mu.Lock()
	p.ctxs[c] = struct{}{}
	p.mu.Unlock()
	return c
}

func (p *Pool) retire(c *Ctx) {
	p.mu.Lock()
	p.retired = p.retired.Add(c.stats)
	delete(p.ctxs, c)
	p.mu.Unlock()
}

// Stats returns the pool-wide event totals: the retired contexts'
// counters plus those of every live context. Live contexts must be
// quiescent while Stats is called for an exact snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := p.retired.Add(p.injected)
	for c := range p.ctxs {
		s = s.Add(c.stats)
	}
	p.mu.Unlock()
	return s
}

// MaxClock returns the largest virtual clock over all live contexts.
func (p *Pool) MaxClock() int64 {
	p.mu.Lock()
	var m int64
	for c := range p.ctxs {
		if c.clock > m {
			m = c.clock
		}
	}
	p.mu.Unlock()
	return m
}

// ResetClocks zeroes all live context clocks (phase boundary).
func (p *Pool) ResetClocks() {
	p.mu.Lock()
	for c := range p.ctxs {
		c.clock = 0
	}
	p.mu.Unlock()
}

func (p *Pool) check(addr, size uint64) {
	if addr+size > p.cfg.PoolSize || addr+size < addr {
		panic(AccessError{Addr: addr, Size: size, PoolSize: p.cfg.PoolSize})
	}
}

func (p *Pool) checkAligned(addr uint64) {
	if addr&7 != 0 {
		panic(AccessError{Addr: addr, Misaligned: true})
	}
	p.check(addr, 8)
}

// touch performs the cache-model bookkeeping for one line access and
// charges the context's virtual clock, consuming a pending prefetch of
// the line if one exists.
func (p *Pool) touch(c *Ctx, line uint64, store bool) {
	t := &p.cfg.Timing
	done, prefetched := int64(0), false
	if !store && c.nprefetch > 0 {
		done, prefetched = c.takePrefetch(line)
	}
	hit := p.cache.access(p, c, line, store)
	switch {
	case prefetched && hit:
		// Data arrives at the prefetch completion time; the load
		// itself only pays a cache-hit access.
		if done > c.clock {
			c.clock = done
		}
		c.clock += t.CacheHitLoad
		c.stats.CacheHits++
	case hit:
		if store {
			c.clock += t.CacheHitStore
		} else {
			c.clock += t.CacheHitLoad
		}
		c.stats.CacheHits++
	default:
		if store {
			c.clock += t.CacheMissStore
		} else {
			c.clock += t.CacheMissLoad
		}
		c.stats.CacheMisses++
	}
}

// Load64 atomically loads the 64-bit word at addr. Reading a poisoned
// XPLine panics with a typed AccessError (the simulated machine
// check); see media.go.
func (p *Pool) Load64(c *Ctx, addr uint64) uint64 {
	p.checkAligned(addr)
	p.checkPoison(c, addr, 8)
	p.touch(c, addr&^uint64(CachelineSize-1), false)
	return atomic.LoadUint64(&p.words[addr/8])
}

// Store64 atomically stores v to the 64-bit word at addr. The line
// becomes dirty in the simulated cache; under eADR it is already
// durable, under ADR it is durable only once flushed or evicted.
// Storing into a poisoned XPLine clears its poison (write-to-heal).
func (p *Pool) Store64(c *Ctx, addr uint64, v uint64) {
	p.checkAligned(addr)
	p.clearPoison(addr, 8)
	p.step(c)
	p.touch(c, addr&^uint64(CachelineSize-1), true)
	atomic.StoreUint64(&p.words[addr/8], v)
}

// CAS64 performs a compare-and-swap on the word at addr. The embedded
// read machine-checks on a poisoned XPLine like Load64.
func (p *Pool) CAS64(c *Ctx, addr uint64, old, new uint64) bool {
	p.checkAligned(addr)
	p.checkPoison(c, addr, 8)
	p.step(c)
	p.touch(c, addr&^uint64(CachelineSize-1), true)
	return atomic.CompareAndSwapUint64(&p.words[addr/8], old, new)
}

// wordPtr exposes the backing word for transactional commit paths
// (package htm); it performs no cache simulation.
func (p *Pool) wordPtr(addr uint64) *uint64 {
	return &p.words[addr/8]
}

// touchRange touches every cacheline overlapped by [addr, addr+n).
func (p *Pool) touchRange(c *Ctx, addr, n uint64, store bool) {
	if n == 0 {
		return
	}
	first := addr &^ uint64(CachelineSize-1)
	last := (addr + n - 1) &^ uint64(CachelineSize-1)
	for line := first; line <= last; line += CachelineSize {
		p.touch(c, line, store)
	}
}

// Read copies len(dst) bytes starting at addr into dst, simulating the
// cache traffic of the reads.
func (p *Pool) Read(c *Ctx, addr uint64, dst []byte) {
	n := uint64(len(dst))
	p.check(addr, n)
	p.checkPoison(c, addr, n)
	p.touchRange(c, addr, n, false)
	p.copyOut(addr, dst)
}

// Write copies src into the pool at addr, simulating the cache traffic
// of the stores (write-allocate). Partial words at the edges are
// merged read-modify-write; concurrent writers of the same word must
// be synchronised by the caller, as on real hardware with non-atomic
// multi-byte stores.
func (p *Pool) Write(c *Ctx, addr uint64, src []byte) {
	n := uint64(len(src))
	p.check(addr, n)
	p.clearPoison(addr, n)
	p.step(c)
	p.touchRange(c, addr, n, true)
	p.copyIn(addr, src)
}

// NTStore writes src to addr with non-temporal semantics: the data
// bypasses the CPU cache and is immediately durable in media. Resident
// lines in the written range are invalidated. Incompatible with HTM
// transactions, as on real hardware.
func (p *Pool) NTStore(c *Ctx, addr uint64, src []byte) {
	n := uint64(len(src))
	p.check(addr, n)
	if n == 0 {
		return
	}
	p.clearPoison(addr, n)
	p.step(c)
	t := &p.cfg.Timing
	first := addr &^ uint64(CachelineSize-1)
	last := (addr + n - 1) &^ uint64(CachelineSize-1)
	for line := first; line <= last; line += CachelineSize {
		p.cache.invalidateLine(line)
		c.stats.CachelineWrites++
		c.stats.NTStores++
		p.xpb.write(c, line)
		c.clock += t.NTStoreLine
	}
	p.copyIn(addr, src)
}

// Flush issues clwb for every cacheline overlapping [addr, addr+size):
// dirty lines are written back to media and stay resident clean. The
// write-back is asynchronous; call Fence to order it (and pay the
// drain cost).
func (p *Pool) Flush(c *Ctx, addr, size uint64) {
	if size == 0 {
		return
	}
	p.check(addr, size)
	p.step(c)
	t := &p.cfg.Timing
	first := addr &^ uint64(CachelineSize-1)
	last := (addr + size - 1) &^ uint64(CachelineSize-1)
	for line := first; line <= last; line += CachelineSize {
		c.stats.Flushes++
		c.clock += t.FlushIssue
		p.cache.flushLine(p, c, line)
		c.pendingFlushes++
	}
}

// Fence is a persistence barrier (sfence): it drains outstanding
// flushes issued through this context.
func (p *Pool) Fence(c *Ctx) {
	p.step(c)
	t := &p.cfg.Timing
	c.stats.Fences++
	if c.pendingFlushes > 0 {
		c.clock += t.FenceDrain
		c.pendingFlushes = 0
	} else {
		c.clock += t.FenceIdle
	}
}

// Prefetch starts an asynchronous load of the cacheline containing
// addr. The line is installed in the cache; the data becomes usable at
// the completion time recorded in the context, so a later Load of the
// same line only waits out the residual latency. This is the mechanism
// behind the paper's pipelined execution (§III-D).
func (p *Pool) Prefetch(c *Ctx, addr uint64) {
	p.check(addr, 1)
	t := &p.cfg.Timing
	line := addr &^ uint64(CachelineSize-1)
	hit := p.cache.access(p, c, line, false)
	c.clock += t.DRAMAccess // issue cost
	lat := t.CacheMissLoad
	if hit {
		lat = t.CacheHitLoad
	} else {
		c.stats.CacheMisses++
	}
	c.notePrefetch(line, c.clock+lat)
}

// Crash simulates a power failure. Under eADR the reserve energy
// flushes the CPU cache, so every retired store survives; under ADR
// all dirty cachelines are rolled back to their last media image. The
// cache and XPBuffer come back empty. Crash requires the pool to be
// quiescent (no operations between Ctx.BeginOp and Ctx.EndOp): a power
// cut taken mid-operation has ill-defined simulation state unless it
// goes through the deterministic fault injector, so a non-quiescent
// Crash without an armed FaultPlan panics instead of silently
// producing an image no real power failure could. It returns the
// number of cachelines whose contents were lost.
func (p *Pool) Crash() int {
	if n := p.inFlight.Load(); n > 0 && p.fault.Load() == nil {
		panic(fmt.Sprintf("pmem: Crash with %d operations in flight and no armed FaultPlan; "+
			"mid-operation power cuts must use fault injection (Pool.ArmFault)", n))
	}
	mp := p.media.Load()
	lost := p.cache.crash(p, p.cfg.Mode, mp)
	p.xpb.reset()
	p.applyMediaFaults(mp)
	if lost > 0 {
		p.mu.Lock()
		p.injected.CrashLostLines += uint64(lost)
		p.mu.Unlock()
	}
	return lost
}

// InFlightOps returns the number of operations currently executing
// (between Ctx.BeginOp and Ctx.EndOp) on this pool.
func (p *Pool) InFlightOps() int { return int(p.inFlight.Load()) }

// DirtyLines reports how many cachelines are currently dirty in the
// simulated cache (diagnostic).
func (p *Pool) DirtyLines() int { return p.cache.dirtyLines() }

// copyOut copies pool bytes [addr, addr+len(dst)) into dst without
// cache simulation.
func (p *Pool) copyOut(addr uint64, dst []byte) {
	for len(dst) > 0 {
		w := atomic.LoadUint64(&p.words[addr/8])
		off := int(addr & 7)
		n := 8 - off
		if n > len(dst) {
			n = len(dst)
		}
		for i := 0; i < n; i++ {
			dst[i] = byte(w >> uint(8*(off+i)))
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// copyIn copies src into pool bytes starting at addr without cache
// simulation. Partial words are read-modify-written.
func (p *Pool) copyIn(addr uint64, src []byte) {
	for len(src) > 0 {
		wi := addr / 8
		off := int(addr & 7)
		n := 8 - off
		if n > len(src) {
			n = len(src)
		}
		if n == 8 {
			atomic.StoreUint64(&p.words[wi], le64At(src, 0))
		} else {
			w := atomic.LoadUint64(&p.words[wi])
			for i := 0; i < n; i++ {
				sh := uint(8 * (off + i))
				w = w&^(0xFF<<sh) | uint64(src[i])<<sh
			}
			atomic.StoreUint64(&p.words[wi], w)
		}
		src = src[n:]
		addr += uint64(n)
	}
}
