package pmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testPool(t *testing.T, mode Mode) *Pool {
	t.Helper()
	cfg := Config{
		PoolSize:      16 << 20,
		Mode:          mode,
		CacheSize:     256 << 10,
		CacheWays:     8,
		XPBufferLines: 64,
	}
	return New(cfg)
}

func TestLoadStoreRoundTrip(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	p.Store64(c, 64, 0xDEADBEEFCAFEBABE)
	if got := p.Load64(c, 64); got != 0xDEADBEEFCAFEBABE {
		t.Fatalf("Load64 = %#x", got)
	}
	if got := p.Load64(c, 72); got != 0 {
		t.Fatalf("untouched word = %#x, want 0", got)
	}
}

func TestReadWriteBytesRoundTrip(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	f := func(seed int64, off uint16, n uint16) bool {
		addr := uint64(off) + 8 // avoid nil page
		size := int(n)%512 + 1
		src := make([]byte, size)
		rng := rand.New(rand.NewSource(seed))
		rng.Read(src)
		p.Write(c, addr, src)
		dst := make([]byte, size)
		p.Read(c, addr, dst)
		for i := range src {
			if src[i] != dst[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedWriteDoesNotClobberNeighbours(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	p.Store64(c, 64, 0x1111111111111111)
	p.Store64(c, 72, 0x2222222222222222)
	p.Write(c, 67, []byte{0xAA, 0xBB, 0xCC}) // straddles bytes 3..5 of word 64
	if got := p.Load64(c, 64); got != 0x1111CCBBAA111111 {
		t.Fatalf("word = %#x", got)
	}
	if got := p.Load64(c, 72); got != 0x2222222222222222 {
		t.Fatalf("neighbour clobbered: %#x", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Load64(c, p.Size())
}

func TestUnalignedLoad64Panics(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Load64(c, 65)
}

func TestCacheHitMissAccounting(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	p.Store64(c, 4096, 1) // miss (write-allocate)
	s := c.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 0 {
		t.Fatalf("after cold store: %+v", s)
	}
	p.Load64(c, 4096+8) // same line: hit
	s = c.Stats()
	if s.CacheHits != 1 {
		t.Fatalf("after warm load: %+v", s)
	}
	if s.CachelineReads != 1 {
		t.Fatalf("line fills = %d, want 1", s.CachelineReads)
	}
}

func TestEvictionWritesBackDirtyLines(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	// Dirty far more lines than the cache holds.
	lines := int(p.cfg.CacheSize/CachelineSize) * 4
	for i := 0; i < lines; i++ {
		p.Store64(c, uint64(i)*CachelineSize, uint64(i))
	}
	s := c.Stats()
	if s.Evictions == 0 || s.CachelineWrites == 0 {
		t.Fatalf("no evictions recorded: %+v", s)
	}
	// Every line is eventually either resident-dirty or written back.
	if int(s.CachelineWrites)+p.DirtyLines() != lines {
		t.Fatalf("writes(%d) + dirty(%d) != %d", s.CachelineWrites, p.DirtyLines(), lines)
	}
}

func TestFlushWritesBackOnceAndCleans(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	p.Store64(c, 128, 7)
	p.Flush(c, 128, 8)
	s := c.Stats()
	if s.CachelineWrites != 1 || s.Flushes != 1 {
		t.Fatalf("after flush: %+v", s)
	}
	// Second flush of the now-clean line writes nothing.
	p.Flush(c, 128, 8)
	s = c.Stats()
	if s.CachelineWrites != 1 {
		t.Fatalf("clean flush wrote back: %+v", s)
	}
	if p.DirtyLines() != 0 {
		t.Fatalf("dirty lines = %d", p.DirtyLines())
	}
}

func TestFenceCosts(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	p.Fence(c)
	idle := c.Clock()
	c.ResetClock()
	p.Store64(c, 64, 1)
	p.Flush(c, 64, 8)
	after := c.Clock()
	p.Fence(c)
	if drain := c.Clock() - after; drain <= idle {
		t.Fatalf("drain fence (%d) not more expensive than idle fence (%d)", drain, idle)
	}
}

// Sequential flush of the four cachelines of one XPLine must coalesce
// into a single media XPLine write.
func TestXPBufferCoalescesSequentialFlush(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	base := uint64(XPLineSize) * 10
	for l := uint64(0); l < 4; l++ {
		p.Store64(c, base+l*CachelineSize, l)
	}
	p.Flush(c, base, XPLineSize)
	p.Fence(c)
	s := c.Stats()
	if s.CachelineWrites != 4 {
		t.Fatalf("cacheline writes = %d, want 4", s.CachelineWrites)
	}
	if s.XPLineWrites != 1 {
		t.Fatalf("XPLine writes = %d, want 1 (coalesced)", s.XPLineWrites)
	}
}

// Writing back lines of many different XPLines in an interleaved order
// must cost one media XPLine access each (no coalescing).
func TestXPBufferRandomWritebacksAmplify(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	const chunks = 512
	// Flush line k of every chunk before line k+1 of any chunk, so
	// sibling lines are separated by >> XPBuffer capacity.
	for l := uint64(0); l < 4; l++ {
		for i := uint64(0); i < chunks; i++ {
			addr := (i+1)*XPLineSize + l*CachelineSize
			p.Store64(c, addr, l)
			p.Flush(c, addr, 8)
		}
	}
	s := c.Stats()
	if s.XPLineWrites < chunks*3 {
		t.Fatalf("XPLine writes = %d, want near %d (amplified)", s.XPLineWrites, chunks*4)
	}
}

func TestNTStoreBypassesCacheAndIsDurable(t *testing.T) {
	p := testPool(t, ADR)
	c := p.NewCtx()
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	p.NTStore(c, 4096, buf)
	if p.DirtyLines() != 0 {
		t.Fatalf("ntstore dirtied the cache")
	}
	p.Crash()
	got := make([]byte, 64)
	p.Read(c, 4096, got)
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("byte %d = %d after crash, want %d", i, got[i], buf[i])
		}
	}
}

func TestADRCrashRollsBackUnflushedStores(t *testing.T) {
	p := testPool(t, ADR)
	c := p.NewCtx()
	p.Store64(c, 64, 1)
	p.Flush(c, 64, 8)
	p.Fence(c)
	p.Store64(c, 64, 2) // dirty again, never flushed
	p.Store64(c, 4096, 3)
	lost := p.Crash()
	if lost != 2 {
		t.Fatalf("lost lines = %d, want 2", lost)
	}
	if got := p.Load64(c, 64); got != 1 {
		t.Fatalf("flushed-then-redirtied word = %d, want rollback to 1", got)
	}
	if got := p.Load64(c, 4096); got != 0 {
		t.Fatalf("never-flushed word = %d, want 0", got)
	}
}

func TestEADRCrashKeepsUnflushedStores(t *testing.T) {
	p := testPool(t, EADR)
	c := p.NewCtx()
	p.Store64(c, 64, 42)
	if lost := p.Crash(); lost != 0 {
		t.Fatalf("eADR crash lost %d lines", lost)
	}
	if got := p.Load64(c, 64); got != 42 {
		t.Fatalf("word = %d after eADR crash, want 42", got)
	}
}

// Under ADR, a flushed line that is then evicted and re-read must not
// be rolled back (its media image is current).
func TestADREvictedLinesSurvive(t *testing.T) {
	p := testPool(t, ADR)
	c := p.NewCtx()
	lines := int(p.cfg.CacheSize/CachelineSize) * 4
	for i := 0; i < lines; i++ {
		p.Store64(c, uint64(i)*CachelineSize, uint64(i)+1)
	}
	p.Crash()
	// Evicted lines keep their values; only still-dirty ones rolled back.
	survived := 0
	for i := 0; i < lines; i++ {
		if p.Load64(c, uint64(i)*CachelineSize) == uint64(i)+1 {
			survived++
		}
	}
	if survived == 0 || survived == lines {
		t.Fatalf("survived = %d of %d, want a strict subset (evicted lines durable)", survived, lines)
	}
}

func TestPrefetchOverlapsLatency(t *testing.T) {
	p := testPool(t, EADR)
	miss := p.cfg.Timing.CacheMissLoad

	// Cold loads back-to-back: full miss latency each.
	c1 := p.NewCtx()
	p.Load64(c1, 0*XPLineSize)
	p.Load64(c1, 100*XPLineSize)
	serial := c1.Clock()

	// Prefetch both, do some work, then load: latencies overlap.
	c2 := p.NewCtx()
	p.Prefetch(c2, 200*XPLineSize)
	p.Prefetch(c2, 300*XPLineSize)
	p.Load64(c2, 200*XPLineSize)
	p.Load64(c2, 300*XPLineSize)
	pipelined := c2.Clock()

	if pipelined >= serial {
		t.Fatalf("pipelined clock %d >= serial %d", pipelined, serial)
	}
	if pipelined < miss {
		t.Fatalf("pipelined clock %d below one miss latency %d", pipelined, miss)
	}
}

func TestStatsAggregation(t *testing.T) {
	p := testPool(t, EADR)
	c1 := p.NewCtx()
	c2 := p.NewCtx()
	p.Store64(c1, 64, 1)
	p.Store64(c2, 4096, 1)
	if s := p.Stats(); s.CacheMisses != 2 {
		t.Fatalf("live aggregation: %+v", s)
	}
	c1.Release()
	if s := p.Stats(); s.CacheMisses != 2 {
		t.Fatalf("after release: %+v", s)
	}
	c2.Release()
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{CacheHits: 5, XPLineWrites: 3}
	b := Stats{CacheHits: 2, XPLineWrites: 1}
	d := a.Sub(b)
	if d.CacheHits != 3 || d.XPLineWrites != 2 {
		t.Fatalf("Sub: %+v", d)
	}
	if s := d.Add(b); s != a {
		t.Fatalf("Add: %+v", s)
	}
	if a.MediaWriteBytes() != 3*XPLineSize || a.MediaReadBytes() != 0 {
		t.Fatalf("media bytes: %d/%d", a.MediaReadBytes(), a.MediaWriteBytes())
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	p := testPool(t, EADR)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			c := p.NewCtx()
			defer c.Release()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20000; i++ {
				addr := (rng.Uint64() % (p.Size() / 8)) * 8
				if addr == 0 {
					addr = 8
				}
				if i%3 == 0 {
					p.Store64(c, addr, uint64(i))
				} else {
					p.Load64(c, addr)
				}
				if i%64 == 0 {
					p.Flush(c, addr, 8)
					p.Fence(c)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
