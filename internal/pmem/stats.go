package pmem

// Stats aggregates the memory-event counters of a pool. All counters
// are totals since pool creation (or since the snapshot they are
// diffed against).
type Stats struct {
	// CacheHits and CacheMisses count loads served by / missing the
	// simulated CPU cache.
	CacheHits   uint64
	CacheMisses uint64
	// CachelineReads counts cachelines transferred from PM media to
	// the CPU cache (fill on load or store miss, prefetch).
	CachelineReads uint64
	// CachelineWrites counts cachelines written back from the CPU
	// cache to PM media (eviction, flush) plus ntstore lines.
	CachelineWrites uint64
	// XPLineReads and XPLineWrites count accesses at the media's
	// internal 256-byte granularity, after XPBuffer coalescing. These
	// are the quantities the paper measures with ipmctl (Fig 8).
	XPLineReads  uint64
	XPLineWrites uint64
	// Flushes counts clwb operations issued (whether or not the line
	// was dirty); Fences counts memory barriers.
	Flushes uint64
	Fences  uint64
	// Evictions counts dirty-line write-backs forced by capacity
	// (as opposed to explicit flushes).
	Evictions uint64
	// NTStores counts cachelines moved by non-temporal stores.
	NTStores uint64
	// MediaBitFlips, MediaTornLines and MediaPoisonedLines count faults
	// injected by an armed MediaFaultPlan (media.go): single-bit flips
	// applied to media words, dirty cachelines torn (partially retained)
	// during an ADR crash rollback, and XPLines marked poisoned.
	MediaBitFlips      uint64
	MediaTornLines     uint64
	MediaPoisonedLines uint64
	// PoisonReads counts reads that hit a poisoned XPLine and surfaced
	// an AccessError instead of data (the simulated machine checks).
	PoisonReads uint64
	// CrashLostLines counts dirty cachelines rolled back by Crash
	// (ADR mode; always 0 under eADR). Per-device, so a sharded DB's
	// per-shard snapshots expose which shard lost state.
	CrashLostLines uint64
}

// MediaReadBytes returns the bytes read from PM media, at XPLine
// granularity.
func (s Stats) MediaReadBytes() uint64 { return s.XPLineReads * XPLineSize }

// MediaWriteBytes returns the bytes written to PM media, at XPLine
// granularity. This is the quantity that consumes the scarce PM write
// bandwidth (Observation 1).
func (s Stats) MediaWriteBytes() uint64 { return s.XPLineWrites * XPLineSize }

// Sub returns s - o, counter-wise. Useful for measuring a phase
// between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		CacheHits:       s.CacheHits - o.CacheHits,
		CacheMisses:     s.CacheMisses - o.CacheMisses,
		CachelineReads:  s.CachelineReads - o.CachelineReads,
		CachelineWrites: s.CachelineWrites - o.CachelineWrites,
		XPLineReads:     s.XPLineReads - o.XPLineReads,
		XPLineWrites:    s.XPLineWrites - o.XPLineWrites,
		Flushes:         s.Flushes - o.Flushes,
		Fences:          s.Fences - o.Fences,
		Evictions:       s.Evictions - o.Evictions,
		NTStores:        s.NTStores - o.NTStores,

		MediaBitFlips:      s.MediaBitFlips - o.MediaBitFlips,
		MediaTornLines:     s.MediaTornLines - o.MediaTornLines,
		MediaPoisonedLines: s.MediaPoisonedLines - o.MediaPoisonedLines,
		PoisonReads:        s.PoisonReads - o.PoisonReads,
		CrashLostLines:     s.CrashLostLines - o.CrashLostLines,
	}
}

// Add returns s + o, counter-wise.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		CacheHits:       s.CacheHits + o.CacheHits,
		CacheMisses:     s.CacheMisses + o.CacheMisses,
		CachelineReads:  s.CachelineReads + o.CachelineReads,
		CachelineWrites: s.CachelineWrites + o.CachelineWrites,
		XPLineReads:     s.XPLineReads + o.XPLineReads,
		XPLineWrites:    s.XPLineWrites + o.XPLineWrites,
		Flushes:         s.Flushes + o.Flushes,
		Fences:          s.Fences + o.Fences,
		Evictions:       s.Evictions + o.Evictions,
		NTStores:        s.NTStores + o.NTStores,

		MediaBitFlips:      s.MediaBitFlips + o.MediaBitFlips,
		MediaTornLines:     s.MediaTornLines + o.MediaTornLines,
		MediaPoisonedLines: s.MediaPoisonedLines + o.MediaPoisonedLines,
		PoisonReads:        s.PoisonReads + o.PoisonReads,
		CrashLostLines:     s.CrashLostLines + o.CrashLostLines,
	}
}
