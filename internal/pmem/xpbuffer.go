package pmem

import "sync"

// xpShards is the number of independently locked XPBuffer shards.
// Shard selection uses the low XPLine-address bits, so all cachelines
// of one XPLine always land in the same shard and can coalesce.
const xpShards = 16

// drainTicks is the write-combining window, in shard operations. The
// XPBuffer is a staging buffer that drains to media continuously, not
// a cache: accesses to an XPLine coalesce only while they arrive close
// together (a sequential flush burst, the back-to-back lines of one
// chunk). An access after the window has drained costs a fresh media
// access — this is why repeated flushes to a hot region keep consuming
// PM write bandwidth (Observation 3).
const drainTicks = 32

// xpEntry is one open XPLine in the media's combining buffer.
type xpEntry struct {
	// tag is the XPLine address + 1; 0 means empty.
	tag   uint64
	tick  uint32
	dirty bool
	// lastTouch is the shard tick of the last coalesced access; the
	// entry's window is drained once the shard advances past it by
	// drainTicks.
	lastTouch uint32
}

type xpShard struct {
	mu      sync.Mutex
	tick    uint32
	entries []xpEntry
}

// xpbuffer models the small write-combining buffer in front of the PM
// media (the "XPBuffer" of Yang et al., FAST'20). Cacheline-sized
// transfers to/from media that fall into an XPLine already open in the
// buffer coalesce into a single media access; everything else costs a
// full 256-byte media access. This mechanism is what makes sequential
// flushing cheap and random dirty-line eviction expensive
// (Observations 2 and 3 in the paper).
type xpbuffer struct {
	shards [xpShards]xpShard
}

func newXPBuffer(totalLines int) *xpbuffer {
	per := totalLines / xpShards
	if per < 1 {
		per = 1
	}
	b := &xpbuffer{}
	for i := range b.shards {
		b.shards[i].entries = make([]xpEntry, per)
	}
	return b
}

func (b *xpbuffer) shard(xpl uint64) *xpShard {
	return &b.shards[(xpl/XPLineSize)%xpShards]
}

// lookup finds or installs the XPLine containing line. It returns the
// entry (locked via the shard mutex held by the caller) and whether it
// was already open.
func (s *xpShard) lookup(xpl uint64) (*xpEntry, bool) {
	s.tick++
	tag := xpl + 1
	empty, lru := -1, 0
	var lruTick uint32 = ^uint32(0)
	for i := range s.entries {
		e := &s.entries[i]
		if e.tag == tag {
			e.tick = s.tick
			return e, true
		}
		if e.tag == 0 {
			if empty < 0 {
				empty = i
			}
		} else if e.tick < lruTick {
			lru, lruTick = i, e.tick
		}
	}
	victim := lru
	if empty >= 0 {
		victim = empty
	}
	e := &s.entries[victim]
	e.tag = tag
	e.tick = s.tick
	e.dirty = false
	e.lastTouch = s.tick
	return e, false
}

// fresh reports whether the entry's combining window is still open.
func (s *xpShard) fresh(e *xpEntry) bool {
	return s.tick-e.lastTouch <= drainTicks
}

// write records a cacheline write-back to media. Writes to an XPLine
// whose combining window is open coalesce for free; anything else
// costs one media XPLine write.
func (b *xpbuffer) write(ctx *Ctx, line uint64) {
	xpl := line &^ uint64(XPLineSize-1)
	s := b.shard(xpl)
	s.mu.Lock()
	e, open := s.lookup(xpl)
	if !open || !e.dirty || !s.fresh(e) {
		e.dirty = true
		ctx.stats.XPLineWrites++
	}
	e.lastTouch = s.tick
	s.mu.Unlock()
}

// read records a cacheline fetch from media. A fetch whose XPLine is
// open and fresh in the buffer is served from it without a media
// access.
func (b *xpbuffer) read(ctx *Ctx, line uint64) {
	xpl := line &^ uint64(XPLineSize-1)
	s := b.shard(xpl)
	s.mu.Lock()
	e, open := s.lookup(xpl)
	if !open || !s.fresh(e) {
		ctx.stats.XPLineReads++
	}
	e.lastTouch = s.tick
	s.mu.Unlock()
}

// reset empties the buffer (crash or phase boundary).
func (b *xpbuffer) reset() {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		for j := range s.entries {
			s.entries[j] = xpEntry{}
		}
		s.tick = 0
		s.mu.Unlock()
	}
}
