// Graceful degradation: when retries exhaust, the primary trips a
// circuit breaker into degraded-async mode — client writes keep
// succeeding locally, their frames spill to a bounded queue, health
// reports DEGRADED (obs.EvalHealth reads the breaker-state and
// spill-depth gauges), and a background prober half-opens the breaker
// and drains the queue once the transport answers again. The primary
// never blocks a write indefinitely on a dead transport.
package repl

import (
	"fmt"
	"time"

	"spash"
	"spash/internal/obs"
)

// BreakerState is the shipping circuit breaker's state. The numeric
// values are published as the repl_breaker_state gauge.
type BreakerState int64

const (
	// BreakerClosed: the transport is healthy; frames ship
	// synchronously and a nil write return means both nodes have it.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: a probe is testing the transport; new frames
	// still spill until the drain completes.
	BreakerHalfOpen
	// BreakerOpen: retries exhausted; degraded-async mode. Writes
	// succeed locally and spill.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("breaker(%d)", int64(s))
}

// PrimaryOptions configure the primary's delivery hardening.
type PrimaryOptions struct {
	// Retry bounds each frame's delivery attempts.
	Retry RetryPolicy
	// SpillLimit caps the degraded-mode spill queue. Past it, a
	// write's frame is shed with a typed ErrRetryExhausted (the local
	// apply stands; the shed is counted as repl_spill_sheds and the
	// replica needs a resync once the transport heals — which the
	// drain's finishing handshake performs). Default 1024; negative
	// means unbounded.
	SpillLimit int
	// ReplayLog caps the delivered-frame log kept for cursor-handshake
	// replay. A replica whose cursor fell behind the log's horizon is
	// re-seeded instead. Default 1024; negative disables replay
	// (every gap re-seeds).
	ReplayLog int
	// ProbeInterval is the background prober's period while the
	// breaker is open. Default 25ms; negative disables the prober
	// (tests drive recovery with TryDrain).
	ProbeInterval time.Duration
}

func (po PrimaryOptions) withDefaults() PrimaryOptions {
	po.Retry = po.Retry.withDefaults()
	if po.SpillLimit == 0 {
		po.SpillLimit = 1024
	}
	if po.SpillLimit < 0 {
		po.SpillLimit = 1 << 30
	}
	if po.ReplayLog == 0 {
		po.ReplayLog = 1024
	}
	if po.ReplayLog < 0 {
		po.ReplayLog = 0
	}
	if po.ProbeInterval == 0 {
		po.ProbeInterval = 25 * time.Millisecond
	}
	return po
}

// Breaker returns the shipping breaker's current state and, when not
// closed, the reason it tripped.
func (p *Primary) Breaker() (BreakerState, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state, p.reason
}

// SpillDepth returns the number of frames parked in the spill queue.
func (p *Primary) SpillDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.spill)
}

// Deposed reports whether shipping observed a newer promotion epoch
// and permanently fenced this primary's transport path (local state
// is untouched; the caller decides what to do with a deposed node).
func (p *Primary) Deposed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deposed
}

// shipFrameLocked routes one freshly sequenced frame: fenced if
// deposed, spilled while the breaker is not closed OR older spilled
// frames exist (stream order: a frame must never overtake a spilled
// predecessor), otherwise shipped synchronously through the retry
// policy — with one automated resync-and-reship when the replica's
// cursor refuses the frame, and a breaker trip (plus spill of this
// frame) when retries exhaust. Caller holds p.mu.
func (p *Primary) shipFrameLocked(f *Frame) error {
	if p.deposed {
		return &spash.ReplicationError{Op: "ship", Shard: f.Shard,
			Epoch: f.Epoch, Err: spash.ErrNotPrimary}
	}
	if p.state != BreakerClosed || len(p.spill) > 0 {
		return p.spillLocked(f)
	}
	err := p.shipRetryLocked(f)
	if err == nil {
		p.logDeliveredLocked(f.Seq, f)
		return nil
	}
	if isAny(err, spash.ErrNotPrimary) {
		p.deposeLocked(err)
		return err
	}
	if isAny(err, spash.ErrNeedsReseed, spash.ErrReplicaLag) {
		// The replica's cursor cannot take this frame as-is: resync
		// (replay the gap or re-seed), then re-ship once.
		if rerr := p.resyncLocked(); rerr != nil {
			p.tripLocked(fmt.Sprintf("resync failed: %v", rerr))
			return p.spillLocked(f)
		}
		if err = p.shipRetryLocked(f); err == nil {
			p.logDeliveredLocked(f.Seq, f)
			return nil
		}
		if isAny(err, spash.ErrNotPrimary) {
			p.deposeLocked(err)
			return err
		}
	}
	// Retries exhausted (or the post-resync re-ship failed): degrade.
	p.tripLocked(err.Error())
	return p.spillLocked(f)
}

// spillLocked parks a frame in the bounded spill queue. The frame's
// local apply already stands, so a full queue sheds the frame with a
// typed error rather than blocking the write; the shed leaves a
// cursor gap the drain's finishing resync repairs (replay log
// permitting) or re-seeds. Caller holds p.mu.
func (p *Primary) spillLocked(f *Frame) error {
	sh := boundShard(p.db, f.Shard)
	if len(p.spill) >= p.opts.SpillLimit {
		p.shedGap = true
		p.db.Indexes()[sh].Obs().Inc(obs.CReplSpillSheds)
		return &spash.ReplicationError{Op: "ship", Shard: f.Shard,
			Epoch: f.Epoch,
			Err: fmt.Errorf("spill queue full (%d frames), frame %d shed: %w",
				len(p.spill), f.Seq, spash.ErrRetryExhausted)}
	}
	p.spill = append(p.spill, f)
	p.spillBytes += int64(frameBytes(f))
	p.db.Indexes()[sh].Obs().Inc(obs.CReplSpills)
	p.setSpillGaugesLocked()
	return nil
}

// tripLocked opens the breaker (degraded-async mode) and starts the
// background prober. Caller holds p.mu.
func (p *Primary) tripLocked(reason string) {
	if p.state == BreakerOpen {
		return
	}
	p.setBreakerLocked(BreakerOpen, reason)
	p.db.Indexes()[0].Obs().Inc(obs.CReplBreakerTrips)
	p.startProberLocked()
}

// deposeLocked permanently fences the transport path: a newer epoch
// exists, so nothing this primary ships can ever apply again.
func (p *Primary) deposeLocked(cause error) {
	p.deposed = true
	p.setBreakerLocked(BreakerOpen, fmt.Sprintf("deposed: %v", cause))
}

// setBreakerLocked moves the breaker and republishes the state gauge
// (on shard 0's registry, where EvalHealth and spash-top read it).
func (p *Primary) setBreakerLocked(s BreakerState, reason string) {
	p.state = s
	p.reason = reason
	p.db.Indexes()[0].Obs().SetGauge(obs.GReplBreakerState, int64(s))
}

// setSpillGaugesLocked republishes the spill-queue levels.
func (p *Primary) setSpillGaugesLocked() {
	reg := p.db.Indexes()[0].Obs()
	reg.SetGauge(obs.GReplSpillDepth, int64(len(p.spill)))
	reg.SetGauge(obs.GReplSpillBytes, p.spillBytes)
}

// TryDrain attempts one recovery pass: half-open the breaker, probe
// the transport with the cursor handshake, ship the spill queue in
// order, and close the breaker (finishing with a resync that repairs
// any shed-induced gap). Returns the number of frames drained. A
// transport still down re-opens the breaker and returns the frames
// drained so far with the error; a fencing error deposes. Safe to
// call in any state; the background prober calls it on its period.
func (p *Primary) TryDrain() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drainLocked()
}

func (p *Primary) drainLocked() (int, error) {
	if p.deposed {
		return 0, &spash.ReplicationError{Op: "drain", Shard: -1,
			Epoch: p.db.Epoch(), Err: spash.ErrNotPrimary}
	}
	if p.state == BreakerClosed && len(p.spill) == 0 {
		return 0, nil
	}
	p.setBreakerLocked(BreakerHalfOpen, p.reason)
	// Probe: the handshake proves the transport answers before any
	// frame is committed to it — and its epoch fences a deposed
	// primary before it wastes ships on frames that can never apply.
	h, err := p.t.Hello()
	if err != nil {
		p.setBreakerLocked(BreakerOpen, fmt.Sprintf("probe failed: %v", err))
		return 0, fmt.Errorf("repl: probe: %w", err)
	}
	if h.Epoch > p.db.Epoch() {
		ferr := &spash.ReplicationError{Op: "drain", Shard: -1,
			Epoch: p.db.Epoch(),
			Err: fmt.Errorf("peer at epoch %d: %w", h.Epoch,
				spash.ErrNotPrimary)}
		p.deposeLocked(ferr)
		return 0, ferr
	}
	drained := 0
	resynced := false
	for len(p.spill) > 0 {
		f := p.spill[0]
		err := p.shipRetryLocked(f)
		if err != nil && !resynced && isAny(err, spash.ErrNeedsReseed, spash.ErrReplicaLag) {
			// One automated resync per drain pass: replay or re-seed,
			// then retry the head frame (a re-seed may have subsumed
			// it, in which case the re-ship acks as a duplicate).
			if rerr := p.resyncLocked(); rerr == nil {
				resynced = true
				err = p.shipRetryLocked(f)
			}
		}
		if err != nil {
			if isAny(err, spash.ErrNotPrimary) {
				p.deposeLocked(err)
				return drained, err
			}
			p.setBreakerLocked(BreakerOpen, fmt.Sprintf("drain stalled: %v", err))
			return drained, fmt.Errorf("repl: draining spill: %w", err)
		}
		p.logDeliveredLocked(f.Seq, f)
		p.spill = p.spill[1:]
		p.spillBytes -= int64(frameBytes(f))
		p.setSpillGaugesLocked()
		drained++
	}
	// Close with a finishing resync: spill sheds left cursor gaps the
	// queue no longer carries, and only the handshake can see them.
	if err := p.resyncLocked(); err != nil {
		if isAny(err, spash.ErrNotPrimary) {
			p.deposeLocked(err)
			return drained, err
		}
		p.setBreakerLocked(BreakerOpen, fmt.Sprintf("resync failed: %v", err))
		return drained, err
	}
	p.setBreakerLocked(BreakerClosed, "")
	return drained, nil
}

// startProberLocked launches the background prober (at most one) that
// periodically half-opens the breaker and tries a drain until the
// queue is empty, the primary is deposed, or it is closed. Caller
// holds p.mu. A negative ProbeInterval disables it (recovery is then
// driven manually through TryDrain).
func (p *Primary) startProberLocked() {
	if p.proberOn || p.closed || p.opts.ProbeInterval < 0 {
		return
	}
	p.proberOn = true
	p.proberWG.Add(1)
	go p.proberLoop()
}

// proberLoop probes on a ticker and exits promptly when Close fires
// the done channel — Close joins it through proberWG, so the loop
// never outlives its Primary.
func (p *Primary) proberLoop() {
	defer p.proberWG.Done()
	ticker := time.NewTicker(p.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			p.mu.Lock()
			p.proberOn = false
			p.mu.Unlock()
			return
		case <-ticker.C:
		}
		p.mu.Lock()
		if p.closed || p.deposed || (p.state == BreakerClosed && len(p.spill) == 0) {
			p.proberOn = false
			p.mu.Unlock()
			return
		}
		_, _ = p.drainLocked()
		p.mu.Unlock()
	}
}
