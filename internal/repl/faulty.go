// FaultyTransport wraps a Transport with seeded, configurable
// misbehaviour — drops, delays, duplicates, reordering, partition —
// for the chaos drills in internal/crashtest. Its faults are honest
// about acknowledgement: a frame is only ever acked (nil Ship return)
// when the inner transport really accepted it. A "dropped" or
// "delayed" frame may or may not have reached the peer, but the
// caller always sees an error for it — exactly the ambiguity a real
// lossy network produces, and the reason shipping must be
// at-least-once and apply exactly-once.
package repl

import (
	"fmt"
	"math/rand"
	"sync"

	"spash"
)

// FaultSpec configures a FaultyTransport. The rates are independent
// per-Ship probabilities checked in order (drop, delay, dup,
// reorder); the first that fires wins.
type FaultSpec struct {
	// Seed makes the fault sequence deterministic.
	Seed int64
	// Drop is the probability a Ship is swallowed: the frame does NOT
	// reach the peer and the caller gets a timeout error.
	Drop float64
	// Delay is the probability a Ship is delivered but its ack is
	// lost: the frame DOES reach the peer, the caller gets a timeout
	// error, and the inevitable retry arrives as a duplicate.
	Delay float64
	// Dup is the probability a Ship is delivered twice back to back
	// (ack returned normally).
	Dup float64
	// Reorder is the probability a Ship is held — not delivered, not
	// acked — and released after a later frame passes through (or at
	// Heal), arriving out of order as an unacked straggler.
	Reorder float64
	// PartitionAfter, when positive, hard-partitions the transport
	// after that many Ship attempts: every Ship, Fetch, and Hello
	// fails until Heal. Models a network cut mid-workload.
	PartitionAfter int
}

// FaultStats counts what the transport actually did.
type FaultStats struct {
	Ships          int // Ship attempts observed
	Drops          int // swallowed (never delivered)
	Delays         int // delivered but ack lost
	Dups           int // delivered twice
	Reorders       int // held for out-of-order release
	PartitionDrops int // refused while partitioned
}

// FaultyTransport injects seeded faults in front of an inner
// Transport. Safe for concurrent use.
type FaultyTransport struct {
	Inner Transport

	mu          sync.Mutex
	spec        FaultSpec
	rng         *rand.Rand
	stats       FaultStats
	held        []*Frame
	partitioned bool
}

// NewFaultyTransport wraps inner with the given fault spec.
func NewFaultyTransport(inner Transport, spec FaultSpec) *FaultyTransport {
	return &FaultyTransport{Inner: inner, spec: spec,
		rng: rand.New(rand.NewSource(spec.Seed))}
}

// Stats returns a snapshot of the fault counters.
func (t *FaultyTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Partitioned reports whether the transport is currently cut.
func (t *FaultyTransport) Partitioned() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partitioned
}

// Cut hard-partitions the transport immediately: every Ship, Fetch,
// and Hello fails until Heal. The deterministic alternative to
// PartitionAfter for drills that cut at a workload position rather
// than an attempt count.
func (t *FaultyTransport) Cut() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned = true
}

// Heal reconnects a partitioned transport and releases any held
// (reordered) frames to the peer. Held frames were never acked, so
// their delivery errors are discarded — the peer either absorbs them
// as duplicates/window fills or sheds them, and the sender's resync
// machinery owns convergence.
func (t *FaultyTransport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned = false
	t.flushHeldLocked()
}

func (t *FaultyTransport) flushHeldLocked() {
	held := t.held
	t.held = nil
	for _, f := range held {
		_ = t.Inner.Ship(f)
	}
}

// timeoutErr is the ambiguous-outcome error every non-delivering
// fault surfaces: the caller cannot tell a swallowed frame from a
// delivered-but-unacked one, so it must retry into idempotent apply.
func timeoutErr(f *Frame, what string) error {
	return &spash.ReplicationError{Op: "ship", Shard: f.Shard, Epoch: f.Epoch,
		Err: fmt.Errorf("injected %s of frame %d: %w", what, f.Seq,
			spash.ErrTransportTimeout)}
}

func (t *FaultyTransport) Ship(f *Frame) error {
	t.mu.Lock()
	t.stats.Ships++
	if t.spec.PartitionAfter > 0 && t.stats.Ships > t.spec.PartitionAfter {
		t.partitioned = true
	}
	if t.partitioned {
		t.stats.PartitionDrops++
		t.mu.Unlock()
		return timeoutErr(f, "partition drop")
	}
	roll := t.rng.Float64()
	switch {
	case roll < t.spec.Drop:
		t.stats.Drops++
		t.mu.Unlock()
		return timeoutErr(f, "drop")
	case roll < t.spec.Drop+t.spec.Delay:
		t.stats.Delays++
		t.mu.Unlock()
		// Delivered for real, but the ack is "lost": the caller's
		// retry will land a duplicate.
		_ = t.Inner.Ship(f)
		return timeoutErr(f, "ack loss")
	case roll < t.spec.Drop+t.spec.Delay+t.spec.Dup:
		t.stats.Dups++
		t.mu.Unlock()
		err := t.Inner.Ship(f)
		if err == nil {
			_ = t.Inner.Ship(f) // the duplicate
		}
		return err
	case roll < t.spec.Drop+t.spec.Delay+t.spec.Dup+t.spec.Reorder:
		t.stats.Reorders++
		// Held WITHOUT ack (acking an undelivered frame would forge
		// durability): released after the next frame passes, arriving
		// out of order.
		t.held = append(t.held, cloneFrame(f))
		t.mu.Unlock()
		return timeoutErr(f, "reorder hold")
	}
	t.mu.Unlock()
	err := t.Inner.Ship(f)
	if err == nil {
		// A frame got through: release any held stragglers behind it,
		// out of order now by construction.
		t.mu.Lock()
		t.flushHeldLocked()
		t.mu.Unlock()
	}
	return err
}

func (t *FaultyTransport) Fetch(req FetchReq) ([]KV, error) {
	t.mu.Lock()
	cut := t.partitioned
	t.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("faulty: fetch during partition: %w",
			spash.ErrTransportTimeout)
	}
	return t.Inner.Fetch(req)
}

func (t *FaultyTransport) Hello() (Hello, error) {
	t.mu.Lock()
	cut := t.partitioned
	t.mu.Unlock()
	if cut {
		return Hello{}, fmt.Errorf("faulty: hello during partition: %w",
			spash.ErrTransportTimeout)
	}
	return t.Inner.Hello()
}
