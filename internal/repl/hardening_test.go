package repl_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"spash"
	"spash/internal/obs"
	"spash/internal/pmem"
	"spash/internal/repl"
)

// noSleep removes real backoff delay from retry-heavy tests.
func noSleep(time.Duration) {}

// fastRetry is a retry policy that fails fast without wall-clock cost.
func fastRetry(attempts int) repl.RetryPolicy {
	return repl.RetryPolicy{MaxAttempts: attempts, Sleep: noSleep, Deadline: -1}
}

// flakyTransport fails every Ship until the failure budget runs out,
// then delegates. Fetch/Hello follow the same gate.
type flakyTransport struct {
	inner repl.Transport
	mu    sync.Mutex
	// failN is the number of Ship attempts left to fail; down reports
	// a hard outage (Hello fails too).
	failN int
	down  bool
}

func (t *flakyTransport) setDown(d bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down = d
}

func (t *flakyTransport) Ship(f *repl.Frame) error {
	t.mu.Lock()
	if t.down {
		t.mu.Unlock()
		return fmt.Errorf("flaky: outage: %w", spash.ErrTransportTimeout)
	}
	if t.failN > 0 {
		t.failN--
		t.mu.Unlock()
		return fmt.Errorf("flaky: injected failure: %w", spash.ErrTransportTimeout)
	}
	t.mu.Unlock()
	return t.inner.Ship(f)
}

func (t *flakyTransport) Fetch(req repl.FetchReq) ([]repl.KV, error) {
	t.mu.Lock()
	down := t.down
	t.mu.Unlock()
	if down {
		return nil, fmt.Errorf("flaky: outage: %w", spash.ErrTransportTimeout)
	}
	return t.inner.Fetch(req)
}

func (t *flakyTransport) Hello() (repl.Hello, error) {
	t.mu.Lock()
	down := t.down
	t.mu.Unlock()
	if down {
		return repl.Hello{}, fmt.Errorf("flaky: outage: %w", spash.ErrTransportTimeout)
	}
	return t.inner.Hello()
}

// pairOver wires a primary to a replica through mk(inner transport).
func pairOver(t *testing.T, n int, popts repl.PrimaryOptions,
	mk func(repl.Transport) repl.Transport) (*repl.Primary, *repl.Replica) {
	t.Helper()
	pdb, err := spash.Open(testOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	dopts := testOpts(n)
	dopts.Replica = true
	rdb, err := spash.Open(dopts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repl.NewReplica(rdb)
	if err != nil {
		t.Fatal(err)
	}
	prim, err := repl.NewPrimaryWith(pdb, mk(&repl.InProc{R: rep}), popts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		prim.Close()
		rep.Close()
		pdb.Close()
		rep.DB().Close()
	})
	return prim, rep
}

func TestRetryDeliversThroughFlakyTransport(t *testing.T) {
	var ft *flakyTransport
	prim, rep := pairOver(t, 2,
		repl.PrimaryOptions{Retry: fastRetry(4), ProbeInterval: -1},
		func(inner repl.Transport) repl.Transport {
			ft = &flakyTransport{inner: inner, failN: 2}
			return ft
		})
	// Two attempts fail, the third lands: the write must still be
	// synchronous and the breaker must stay closed.
	if err := prim.Insert(key64(1), key64(2)); err != nil {
		t.Fatalf("insert through flaky transport: %v", err)
	}
	if st, reason := prim.Breaker(); st != repl.BreakerClosed {
		t.Fatalf("breaker = %v (%s), want closed", st, reason)
	}
	if _, found, err := rep.DB().Session().Get(key64(1), nil); err != nil || !found {
		t.Fatalf("replica missing retried frame: found=%v err=%v", found, err)
	}
	snap := prim.DB().ObsSnapshot()
	if got := snap.Counters[obs.CounterNames[obs.CReplRetries]]; got != 2 {
		t.Fatalf("repl_retries = %d, want 2", got)
	}
}

func TestShipDeadlineFencesHangingTransport(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	prim, _ := pairOver(t, 2,
		repl.PrimaryOptions{
			Retry:         repl.RetryPolicy{MaxAttempts: 2, Sleep: noSleep, Deadline: 5 * time.Millisecond},
			ProbeInterval: -1,
		},
		func(inner repl.Transport) repl.Transport {
			return &hangingTransport{inner: inner, block: block}
		})
	// The transport hangs forever; the deadline must fail each attempt
	// and the write must still return (degraded, spilled) rather than
	// block indefinitely.
	done := make(chan error, 1)
	go func() { done <- prim.Insert(key64(1), key64(1)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degraded insert: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert blocked on a hung transport")
	}
	if st, reason := prim.Breaker(); st != repl.BreakerOpen {
		t.Fatalf("breaker = %v (%s), want open", st, reason)
	}
	if got := prim.SpillDepth(); got != 1 {
		t.Fatalf("spill depth = %d, want 1", got)
	}
}

// hangingTransport never answers Ship until block closes.
type hangingTransport struct {
	inner repl.Transport
	block chan struct{}
}

func (t *hangingTransport) Ship(f *repl.Frame) error {
	<-t.block
	return fmt.Errorf("hanging: released: %w", spash.ErrTransportTimeout)
}
func (t *hangingTransport) Fetch(req repl.FetchReq) ([]repl.KV, error) {
	return t.inner.Fetch(req)
}
func (t *hangingTransport) Hello() (repl.Hello, error) { return t.inner.Hello() }

func TestBreakerDegradesAndDrainsOnRecovery(t *testing.T) {
	var ft *flakyTransport
	prim, rep := pairOver(t, 2,
		repl.PrimaryOptions{Retry: fastRetry(2), ProbeInterval: -1},
		func(inner repl.Transport) repl.Transport {
			ft = &flakyTransport{inner: inner}
			return ft
		})
	const n = 20
	ft.setDown(true)
	for i := uint64(0); i < n; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatalf("degraded insert %d: %v", i, err)
		}
	}
	if st, _ := prim.Breaker(); st != repl.BreakerOpen {
		t.Fatalf("breaker = %v, want open during outage", st)
	}
	if got := prim.SpillDepth(); got != n-1 {
		// The first write's frame tripped the breaker after its retries
		// and spilled too; every later frame spilled directly. All n
		// are queued (n-1 only if the first had been delivered).
		if got != n {
			t.Fatalf("spill depth = %d, want %d", got, n)
		}
	}
	// Degraded mode must be visible to health.
	h := prim.DB().Health()
	if h.Status != obs.HealthDegraded {
		t.Fatalf("health during outage = %v (%v), want DEGRADED", h.Status, h.Reasons)
	}
	// A drain attempt against the dead transport must fail and keep
	// the breaker open, not wedge.
	if _, err := prim.TryDrain(); err == nil {
		t.Fatal("TryDrain succeeded against a dead transport")
	}
	// Recovery: drain ships everything in order and closes the breaker.
	ft.setDown(false)
	drained, err := prim.TryDrain()
	if err != nil {
		t.Fatalf("TryDrain after recovery: %v", err)
	}
	if drained == 0 {
		t.Fatal("drained 0 frames after recovery")
	}
	if st, reason := prim.Breaker(); st != repl.BreakerClosed {
		t.Fatalf("breaker after drain = %v (%s), want closed", st, reason)
	}
	if got := prim.SpillDepth(); got != 0 {
		t.Fatalf("spill depth after drain = %d, want 0", got)
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("replica lag after drain = %d, want 0", lag)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		t.Fatalf("replica holds %d keys, primary %d", got, want)
	}
	if h := prim.DB().Health(); h.Status != obs.HealthOK {
		t.Fatalf("health after drain = %v (%v), want OK", h.Status, h.Reasons)
	}
}

func TestProberDrainsInBackground(t *testing.T) {
	var ft *flakyTransport
	prim, rep := pairOver(t, 2,
		repl.PrimaryOptions{Retry: fastRetry(2), ProbeInterval: time.Millisecond},
		func(inner repl.Transport) repl.Transport {
			ft = &flakyTransport{inner: inner}
			return ft
		})
	ft.setDown(true)
	for i := uint64(0); i < 10; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatalf("degraded insert %d: %v", i, err)
		}
	}
	if st, _ := prim.Breaker(); st != repl.BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}
	ft.setDown(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := prim.Breaker()
		if st == repl.BreakerClosed && prim.SpillDepth() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober did not recover: breaker=%v spill=%d", st, prim.SpillDepth())
		}
		time.Sleep(time.Millisecond)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		t.Fatalf("replica holds %d keys, primary %d", got, want)
	}
}

func TestSpillOverflowShedsTypedAndResyncRepairs(t *testing.T) {
	var ft *flakyTransport
	prim, rep := pairOver(t, 2,
		repl.PrimaryOptions{Retry: fastRetry(2), SpillLimit: 2, ProbeInterval: -1},
		func(inner repl.Transport) repl.Transport {
			ft = &flakyTransport{inner: inner}
			return ft
		})
	ft.setDown(true)
	const n = 8
	sheds := 0
	for i := uint64(0); i < n; i++ {
		err := prim.Insert(key64(i), key64(i))
		if err == nil {
			continue
		}
		if !errors.Is(err, spash.ErrRetryExhausted) {
			t.Fatalf("overflow shed %d: %v, want ErrRetryExhausted", i, err)
		}
		var re *spash.ReplicationError
		if !errors.As(err, &re) {
			t.Fatalf("overflow shed %d not a *ReplicationError: %v", i, err)
		}
		sheds++
	}
	if sheds != n-2 {
		t.Fatalf("sheds = %d, want %d (spill limit 2)", sheds, n-2)
	}
	// Shed or not, every write applied locally.
	if got := prim.DB().Len(); got != n {
		t.Fatalf("primary holds %d keys, want %d (sheds must not undo local applies)", got, n)
	}
	// Recovery: the drain ships the spill and its finishing resync
	// repairs the shed-induced gap from the replay log (the shed
	// frames never entered it, so this pass re-seeds).
	ft.setDown(false)
	if _, err := prim.TryDrain(); err != nil {
		t.Fatalf("TryDrain: %v", err)
	}
	if got := rep.DB().Len(); got != n {
		t.Fatalf("replica holds %d keys after resync, want %d", got, n)
	}
	snap := prim.DB().ObsSnapshot()
	if got := snap.Counters[obs.CounterNames[obs.CReplSpillSheds]]; got != int64(sheds) {
		t.Fatalf("repl_spill_sheds = %d, want %d", got, sheds)
	}
}

func TestResyncReplaysPauseLossAfterRejoin(t *testing.T) {
	prim, rep := pair(t, 2)
	const base = 50
	for i := uint64(0); i < base; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer a tail of acknowledged frames, then lose them to a
	// replica power-cycle (eADR: applied state survives, the pause
	// buffer does not).
	rep.Pause()
	for i := uint64(base); i < base+10; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Rejoin(testOpts(2)); err != nil {
		t.Fatalf("eADR rejoin: %v", err)
	}
	if got := rep.AppliedSeq(); got != base {
		t.Fatalf("applied cursor after rejoin = %d, want %d", got, base)
	}
	// The next ship sees the replica's cursor behind the stream and
	// auto-resyncs: the lost tail replays from the delivered log, then
	// the new frame lands — no operator step.
	if err := prim.Insert(key64(999), key64(999)); err != nil {
		t.Fatalf("post-rejoin insert: %v", err)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		t.Fatalf("replica holds %d keys, primary %d", got, want)
	}
	snap := prim.DB().ObsSnapshot()
	if got := snap.Counters[obs.CounterNames[obs.CReplResyncs]]; got == 0 {
		t.Fatal("no resync counted after rejoin gap")
	}
	if got := snap.Counters[obs.CounterNames[obs.CReplReplays]]; got == 0 {
		t.Fatal("no frames replayed after rejoin gap")
	}
}

func adrOpts(n int) spash.Options {
	o := testOpts(n)
	o.Platform.Mode = pmem.ADR
	return o
}

func TestADRRollbackTriggersAutoReseed(t *testing.T) {
	pdb, err := spash.Open(adrOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	dopts := adrOpts(2)
	dopts.Replica = true
	rdb, err := spash.Open(dopts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repl.NewReplica(rdb)
	if err != nil {
		t.Fatal(err)
	}
	prim, err := repl.NewPrimaryWith(pdb, &repl.InProc{R: rep},
		repl.PrimaryOptions{Retry: fastRetry(3), ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		prim.Close()
		rep.Close()
		pdb.Close()
		rep.DB().Close()
	})
	const n = 300
	for i := uint64(0); i < n; i++ {
		if err := prim.Insert(key64(i), key64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	// An ADR power-cycle rolls back unflushed lines; if any are under
	// the applied cursor the replica must refuse to anchor and demand
	// a re-seed.
	rerr := rep.Rejoin(adrOpts(2))
	if rerr != nil && !errors.Is(rerr, spash.ErrNeedsReseed) {
		t.Fatalf("ADR rejoin: %v, want nil or ErrNeedsReseed", rerr)
	}
	if rerr != nil {
		// Reseed-pending: record frames must be refused typed (a dup
		// ack would vouch for rolled-back data) until the re-seed.
		h, herr := rep.Hello()
		if herr != nil || !h.NeedsReseed {
			t.Fatalf("hello after rollback: %+v %v, want NeedsReseed", h, herr)
		}
	}
	// The next write's ship auto-resyncs (replay or full re-seed) with
	// no operator action; both nodes converge.
	if err := prim.Insert(key64(7777), key64(7777)); err != nil {
		t.Fatalf("post-rollback insert: %v", err)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		t.Fatalf("replica holds %d keys, primary %d", got, want)
	}
	rs := rep.DB().Session()
	defer rs.Close()
	for i := uint64(0); i < n; i++ {
		got, found, gerr := rs.Get(key64(i), nil)
		if gerr != nil || !found {
			t.Fatalf("replica lost key %d after reseed: found=%v err=%v", i, found, gerr)
		}
		if string(got) != string(key64(i*3)) {
			t.Fatalf("replica key %d holds wrong value", i)
		}
	}
	if rerr != nil {
		snap := prim.DB().ObsSnapshot()
		if got := snap.Counters[obs.CounterNames[obs.CReplReseeds]]; got == 0 {
			t.Fatal("rollback converged without a counted re-seed")
		}
	}
}

func TestDuplicateFramesAckedAndDropped(t *testing.T) {
	_, rep := pair(t, 2)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := rep.Apply(mkRecord(seq, seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Replays of anything at or under the cursor are acked and dropped.
	for seq := uint64(1); seq <= 3; seq++ {
		if err := rep.Apply(mkRecord(seq, seq)); err != nil {
			t.Fatalf("duplicate seq %d: %v, want ack", seq, err)
		}
	}
	if got := rep.DB().Len(); got != 3 {
		t.Fatalf("replica holds %d keys after duplicates, want 3", got)
	}
	snap := rep.DB().ObsSnapshot()
	if got := snap.Counters[obs.CounterNames[obs.CReplApplyDupes]]; got != 3 {
		t.Fatalf("repl_apply_dupes = %d, want 3", got)
	}
}

func TestPauseBufferCapSheds(t *testing.T) {
	_, rep := pairWith(t, 2, repl.PrimaryOptions{},
		repl.ReplicaOptions{PauseLimit: 4})
	rep.Pause()
	for seq := uint64(1); seq <= 4; seq++ {
		if err := rep.Apply(mkRecord(seq, seq)); err != nil {
			t.Fatalf("buffered frame %d: %v", seq, err)
		}
	}
	// The next in-stream frame hits the cap and is shed, not acked.
	if err := rep.Apply(mkRecord(5, 5)); !errors.Is(err, spash.ErrReplicaLag) {
		t.Fatalf("frame 5 past pause cap: %v, want ErrReplicaLag", err)
	}
	// A frame past the shed one is ahead of the cursor now: the
	// reorder window holds it (bounded separately from the pause
	// buffer) until the shed frame is re-shipped.
	if err := rep.Apply(mkRecord(6, 6)); err != nil {
		t.Fatalf("ahead frame 6: %v, want window buffering", err)
	}
	if lag := rep.Lag(); lag != 5 {
		t.Fatalf("lag = %d, want 5 (4 pause-capped + 1 windowed)", lag)
	}
	if err := rep.Resume(); err != nil {
		t.Fatal(err)
	}
	// The shed frame was refused, not acked: the sender re-ships it
	// and the stream (including the windowed frame) drains.
	if err := rep.Apply(mkRecord(5, 5)); err != nil {
		t.Fatalf("re-shipped frame 5: %v", err)
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("lag after re-ship = %d, want 0", lag)
	}
	if got := rep.DB().Len(); got != 6 {
		t.Fatalf("replica holds %d keys, want 6", got)
	}
	snap := rep.DB().ObsSnapshot()
	if got := snap.Counters[obs.CounterNames[obs.CReplSheds]]; got != 1 {
		t.Fatalf("repl_sheds = %d, want 1", got)
	}
}

// TestShuffledDeliveryConverges is the property-style drill: a seeded
// stream of insert/update/delete frames is delivered with duplicates
// and bounded reordering (displacement under the reorder window), a
// replica power-cycle lands mid-shuffle, and a final in-order sweep
// (the resync replay) must leave the replica byte-identical to the
// in-order model image.
func TestShuffledDeliveryConverges(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			_, rep := pairWith(t, 2, repl.PrimaryOptions{},
				repl.ReplicaOptions{ReorderWindow: 16})

			// Build the canonical stream and its in-order model image.
			const n = 400
			const keys = 64
			model := map[string]string{}
			frames := make([]*repl.Frame, 0, n)
			for seq := uint64(1); seq <= n; seq++ {
				k := key64(uint64(rng.Intn(keys)))
				f := &repl.Frame{Kind: repl.FrameRecord, Epoch: 1, Seq: seq,
					Shard: int(spash.ShardOf(k, 2)), Key: k}
				if rng.Intn(4) == 0 {
					f.Op = repl.RecDelete
					delete(model, string(k))
				} else {
					f.Op = repl.RecInsert
					f.Val = key64(seq)
					model[string(k)] = string(f.Val)
				}
				frames = append(frames, f)
			}

			// Shuffled delivery: bounded displacement (under the window)
			// plus random duplicates; every frame delivered at least once.
			deliver := func(lo, hi int) {
				order := make([]int, hi-lo)
				for i := range order {
					order[i] = lo + i
				}
				for i := range order {
					j := i + rng.Intn(8)
					if j >= len(order) {
						j = len(order) - 1
					}
					order[i], order[j] = order[j], order[i]
				}
				for _, idx := range order {
					f := frames[idx]
					if err := rep.Apply(f); err != nil &&
						!errors.Is(err, spash.ErrReplicaLag) {
						t.Fatalf("apply seq %d: %v", f.Seq, err)
					}
					if rng.Intn(5) == 0 { // duplicate delivery
						if err := rep.Apply(f); err != nil &&
							!errors.Is(err, spash.ErrReplicaLag) {
							t.Fatalf("dup apply seq %d: %v", f.Seq, err)
						}
					}
				}
			}
			deliver(0, n/2)
			// Mid-shuffle power-cycle: the image must recover (Rejoin is
			// RecoverAll) and keep its durable cursor.
			if err := rep.Rejoin(testOpts(2)); err != nil {
				t.Fatalf("mid-shuffle rejoin: %v", err)
			}
			deliver(n/2, n)
			// The resync replay: one in-order sweep of the whole stream.
			// Idempotent apply acks everything already applied.
			for _, f := range frames {
				if err := rep.Apply(f); err != nil {
					t.Fatalf("in-order sweep seq %d: %v", f.Seq, err)
				}
			}

			if got, want := rep.DB().Len(), len(model); got != want {
				t.Fatalf("replica holds %d keys, model %d", got, want)
			}
			rs := rep.DB().Session()
			defer rs.Close()
			for k, v := range model {
				got, found, err := rs.Get([]byte(k), nil)
				if err != nil || !found {
					t.Fatalf("model key missing on replica: found=%v err=%v", found, err)
				}
				if string(got) != v {
					t.Fatalf("model key holds %q, want %q", got, v)
				}
			}
			if got := rep.AppliedSeq(); got != n {
				t.Fatalf("applied cursor = %d, want %d", got, n)
			}
		})
	}
}

func TestFaultyTransportEndToEnd(t *testing.T) {
	var ft *repl.FaultyTransport
	prim, rep := pairOver(t, 2,
		repl.PrimaryOptions{Retry: repl.RetryPolicy{MaxAttempts: 6, Sleep: noSleep, Deadline: -1, JitterSeed: 3}, ProbeInterval: -1},
		func(inner repl.Transport) repl.Transport {
			ft = repl.NewFaultyTransport(inner, repl.FaultSpec{
				Seed: 11, Drop: 0.15, Delay: 0.15, Dup: 0.1, Reorder: 0.1})
			return ft
		})
	const n = 300
	for i := uint64(0); i < n; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatalf("insert %d over faulty transport: %v", i, err)
		}
	}
	// Whatever the faults did, convergence is bounded: heal, drain,
	// resync, compare.
	ft.Heal()
	for range [50]int{} {
		if _, err := prim.TryDrain(); err == nil {
			break
		}
	}
	if err := prim.Resync(); err != nil {
		t.Fatalf("final resync: %v", err)
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("replica lag after heal = %d, want 0", lag)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		st := ft.Stats()
		t.Fatalf("replica holds %d keys, primary %d (faults: %+v)", got, want, st)
	}
	st := ft.Stats()
	if st.Drops == 0 && st.Delays == 0 && st.Dups == 0 && st.Reorders == 0 {
		t.Fatalf("fault injection idle: %+v", st)
	}
}
