package repl_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spash"
	"spash/internal/repl"
)

// countingTransport counts every transport call and can be held down
// (every call fails with a transient error) so the breaker stays open
// and the background prober keeps probing.
type countingTransport struct {
	inner repl.Transport
	down  atomic.Bool
	n     atomic.Int64
}

func (t *countingTransport) calls() int64 { return t.n.Load() }

func (t *countingTransport) fail(op string) error {
	return &spash.ReplicationError{Op: op, Shard: -1,
		Err: spash.ErrTransportTimeout}
}

func (t *countingTransport) Ship(f *repl.Frame) error {
	t.n.Add(1)
	if t.down.Load() {
		return t.fail("ship")
	}
	return t.inner.Ship(f)
}

func (t *countingTransport) Fetch(req repl.FetchReq) ([]repl.KV, error) {
	t.n.Add(1)
	if t.down.Load() {
		return nil, t.fail("fetch")
	}
	return t.inner.Fetch(req)
}

func (t *countingTransport) Hello() (repl.Hello, error) {
	t.n.Add(1)
	if t.down.Load() {
		return repl.Hello{}, t.fail("hello")
	}
	return t.inner.Hello()
}

// TestCloseJoinsProber pins the prober's lifetime to its Primary:
// Close must join the prober goroutine, so once Close returns no
// transport call can start. Before the done-channel join, Close only
// flipped a flag the prober read on its next tick — a probe in flight
// kept using the transport (and the DB underneath it) after Close.
func TestCloseJoinsProber(t *testing.T) {
	var ct *countingTransport
	prim, _ := pairOver(t, 2,
		repl.PrimaryOptions{Retry: fastRetry(2), ProbeInterval: time.Millisecond},
		func(inner repl.Transport) repl.Transport {
			ct = &countingTransport{inner: inner}
			return ct
		})
	ct.down.Store(true)
	if err := prim.Insert(key64(1), key64(1)); err != nil {
		t.Fatalf("degraded insert: %v", err)
	}
	if st, _ := prim.Breaker(); st != repl.BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}
	// Prove the prober is actually running before closing.
	before := ct.calls()
	deadline := time.Now().Add(10 * time.Second)
	for ct.calls() == before {
		if time.Now().After(deadline) {
			t.Fatal("prober never probed the dead transport")
		}
		time.Sleep(time.Millisecond)
	}
	prim.Close()
	after := ct.calls()
	time.Sleep(25 * time.Millisecond) // many probe intervals
	if got := ct.calls(); got != after {
		t.Fatalf("transport saw %d calls after Close returned", got-after)
	}
}

// TestApplyRefusesHostileShard feeds the replica frames whose shard
// number is out of range — the shape a corrupt or hostile REPL.SHIP
// payload produces. Apply must refuse with a typed error before any
// cursor accounting, not panic indexing Indexes()[f.Shard], and the
// refused sequence number must stay claimable by the real frame.
func TestApplyRefusesHostileShard(t *testing.T) {
	prim, rep := pair(t, 2)
	if err := prim.Insert(key64(1), key64(1)); err != nil {
		t.Fatal(err)
	}
	for _, shard := range []int{-1, rep.DB().Shards(), 1 << 20} {
		f := &repl.Frame{Kind: repl.FrameRecord, Epoch: rep.DB().Epoch(),
			Seq: 2, Shard: shard, Op: repl.RecInsert,
			Key: key64(99), Val: key64(99)}
		err := rep.Apply(f)
		var re *spash.ReplicationError
		if !errors.As(err, &re) {
			t.Fatalf("Apply(shard %d) = %v, want *spash.ReplicationError", shard, err)
		}
		if re.Shard != shard {
			t.Fatalf("refusal names shard %d, want %d", re.Shard, shard)
		}
		if !strings.Contains(err.Error(), "no such shard") {
			t.Fatalf("refusal %q does not name the cause", err)
		}
	}
	// The refusals must not have acknowledged Seq 2: the real frame
	// with that sequence number still applies in order.
	if err := prim.Insert(key64(2), key64(2)); err != nil {
		t.Fatal(err)
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("lag = %d after in-order delivery", lag)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		t.Fatalf("replica holds %d keys, primary %d", got, want)
	}
}
