package repl_test

import (
	"strings"
	"testing"

	"spash"
	"spash/internal/obs"
)

// Every operation sampled: the slow-op log must retain ops with
// per-phase attribution, and the per-shard snapshots must carry the
// phase histograms.
func TestSlowOpsAttribution(t *testing.T) {
	opts := testOpts(2)
	opts.Index.SpanSample = 1
	db, err := spash.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()
	const n = 400
	for i := uint64(0); i < n; i++ {
		if err := s.Insert(key64(i), key64(i*7)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if _, _, err := s.Get(key64(i), nil); err != nil {
			t.Fatal(err)
		}
	}

	ops := db.SlowOps(8)
	if len(ops) == 0 {
		t.Fatal("slow-op log empty after fully sampled run")
	}
	for _, op := range ops {
		if op.TotalNS <= 0 {
			t.Fatalf("slow op without duration: %+v", op)
		}
		if op.Op != "insert" && op.Op != "get" {
			t.Fatalf("unexpected op kind %q", op.Op)
		}
		if op.Shard < 0 || op.Shard >= 2 {
			t.Fatalf("slow op shard %d out of range", op.Shard)
		}
		if len(op.Phases) == 0 {
			t.Fatalf("slow op without phase attribution: %+v", op)
		}
		var sum int64
		for _, d := range op.Phases {
			sum += d
		}
		if sum > op.TotalNS {
			t.Fatalf("phases sum %d exceeds total %d: %+v", sum, op.TotalNS, op)
		}
	}
	// Worst-first ordering.
	for i := 1; i < len(ops); i++ {
		if ops[i].TotalNS > ops[i-1].TotalNS {
			t.Fatalf("slow ops not sorted: [%d]=%d > [%d]=%d", i, ops[i].TotalNS, i-1, ops[i-1].TotalNS)
		}
	}

	// Per-shard snapshots carry phase and op-kind histograms.
	shards := db.ObsSnapshots()
	if len(shards) != 2 {
		t.Fatalf("ObsSnapshots: %d shards", len(shards))
	}
	for i, snap := range shards {
		if snap.Phases[obs.PhaseNames[obs.PhaseProbe]].Count() == 0 {
			t.Fatalf("shard %d: no probe phase samples", i)
		}
		if snap.OpLat[obs.SpanKindNames[obs.SpanInsert]].Count() == 0 {
			t.Fatalf("shard %d: no insert op-lat samples", i)
		}
	}
	// Aggregate view sums the shards.
	agg := db.ObsSnapshot()
	var perShard int64
	for _, snap := range shards {
		perShard += snap.Phases[obs.PhaseNames[obs.PhaseProbe]].Count()
	}
	if got := agg.Phases[obs.PhaseNames[obs.PhaseProbe]].Count(); got != perShard {
		t.Fatalf("aggregate probe samples %d != per-shard sum %d", got, perShard)
	}
}

// A paused replica accumulates lag; the health model must degrade the
// replica's verdict with a lag reason and recover after Resume.
func TestPausedReplicaHealthDegraded(t *testing.T) {
	prim, rep := pair(t, 2)
	for i := uint64(0); i < 50; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	h := rep.DB().Health()
	if h.ReplLagRecords != 0 {
		t.Fatalf("synchronous ship left lag: %+v", h)
	}
	for _, r := range h.Reasons {
		if strings.Contains(r, "behind") {
			t.Fatalf("lag reason on an in-sync replica: %v", h.Reasons)
		}
	}

	rep.Pause()
	const lagged = 10
	for i := uint64(100); i < 100+lagged; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := rep.Lag(); got != lagged {
		t.Fatalf("Lag() = %d, want %d", got, lagged)
	}
	if rep.LagBytes() <= 0 {
		t.Fatalf("LagBytes() = %d, want > 0", rep.LagBytes())
	}
	h = rep.DB().Health()
	if h.Status < obs.HealthDegraded {
		t.Fatalf("paused replica health = %v, want >= DEGRADED (%+v)", h.Status, h)
	}
	if h.ReplLagRecords != lagged {
		t.Fatalf("health lag records = %d, want %d", h.ReplLagRecords, lagged)
	}
	if h.ReplLagBytes != int64(rep.LagBytes()) {
		t.Fatalf("health lag bytes = %d, want %d", h.ReplLagBytes, rep.LagBytes())
	}
	found := false
	for _, r := range h.Reasons {
		if strings.Contains(r, "behind") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lag reason in %v", h.Reasons)
	}

	if err := rep.Resume(); err != nil {
		t.Fatal(err)
	}
	h = rep.DB().Health()
	if h.ReplLagRecords != 0 || h.ReplLagBytes != 0 {
		t.Fatalf("lag gauges not cleared after Resume: %+v", h)
	}
	for _, r := range h.Reasons {
		if strings.Contains(r, "behind") {
			t.Fatalf("lag reason survived Resume: %v", h.Reasons)
		}
	}

	// The primary recorded repl_ship phase time for shipped frames.
	aggr := prim.DB().ObsSnapshot()
	if aggr.Phases[obs.PhaseNames[obs.PhaseReplShip]].Count() == 0 {
		t.Fatal("no repl_ship phase samples on the primary")
	}
}
