// Package repl replicates a spash database to a second node: a
// Primary applies client writes locally and ships them — committed
// op records in steady state, seal-verified segment ranges for bulk
// seeding — to a Replica over a Transport, and a promotion protocol
// turns the replica into the primary when the original dies.
//
// The paper's persistent-cache durability guarantee ends at the
// machine boundary: eADR makes visibility imply durability on one
// node, and this package carries the acknowledged state to a second
// fault domain. The shipping discipline mirrors the single-node trust
// rules — a segment range leaves a device only after it verifies
// against its seals (core.Index.ExportRange), and a replica's devices
// are mutated only through the ordinary crash-consistent operation
// paths, so a replica image is at every instant something
// spash.RecoverAll can reopen (the failover drills in
// internal/crashtest promote mid-crash-sweep and hold the durability
// oracle against the survivor).
//
// Split-brain fencing is the promotion epoch stamped into every
// shard's pool geometry: frames carry the shipping primary's epoch,
// promotion durably bumps the replica's epoch before the write fence
// drops, and a deposed primary's later frames arrive with a stale
// epoch and fail apply with spash.ErrNotPrimary.
//
// The Transport is in-process today; the interface is shaped so a
// future spash-serve wire layer can slot in (frames and fetch
// requests are plain value types with no shared-memory hooks).
package repl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spash"
	"spash/internal/obs"
)

// KV is one shipped key-value pair.
type KV struct {
	Key []byte `json:"key"`
	Val []byte `json:"val"`
}

// FrameKind discriminates replication messages.
type FrameKind int

const (
	// FrameRecord ships one committed client operation.
	FrameRecord FrameKind = iota
	// FrameSegment ships a seal-verified segment range (bulk seeding:
	// full sync of a fresh replica, or re-seeding after a rejoin).
	FrameSegment
)

// RecOp is the operation of a FrameRecord.
type RecOp int

const (
	RecInsert RecOp = iota
	RecUpdate
	RecDelete
)

// Frame is one replication message. Every frame carries the shipping
// primary's promotion epoch (fencing) and a per-primary sequence
// number (gap detection).
type Frame struct {
	Kind  FrameKind
	Epoch uint64
	Seq   uint64
	// Shard is the owning shard (same shard layout on both nodes; the
	// key routing is derived from the key hash, so it agrees by
	// construction).
	Shard int

	// FrameRecord payload.
	Op  RecOp
	Key []byte
	Val []byte

	// FrameSegment payload: every live pair of the (Prefix, Depth)
	// hash range. Depth 0 is the whole shard.
	Prefix uint64
	Depth  uint
	KVs    []KV
}

// FetchReq asks a peer for the authoritative live contents of one
// hash range (replica-backed read-repair).
type FetchReq struct {
	Shard  int
	Prefix uint64
	Depth  uint
}

// Transport carries frames to, and range fetches from, the peer.
// Ship must be synchronous: it returns only after the peer accepted
// (or rejected) the frame, so a nil return means the write is on both
// nodes. A wire implementation would put acknowledgement latency
// here.
type Transport interface {
	Ship(f *Frame) error
	Fetch(req FetchReq) ([]KV, error)
}

// InProc is the in-process Transport: frames apply synchronously to a
// Replica in the same address space. The unit of the failover drills.
type InProc struct {
	R *Replica
}

func (t *InProc) Ship(f *Frame) error              { return t.R.Apply(f) }
func (t *InProc) Fetch(req FetchReq) ([]KV, error) { return t.R.Serve(req) }

// Primary wraps a primary-role DB with shipping: every write applies
// locally first and then ships to the peer before it is acknowledged.
// Like the Session it wraps, a Primary is single-worker state — one
// per goroutine.
type Primary struct {
	db  *spash.DB
	s   *spash.Session
	t   Transport
	seq uint64
}

// NewPrimary wraps db (which must hold the primary role) for shipping
// over t.
func NewPrimary(db *spash.DB, t Transport) (*Primary, error) {
	if db.IsReplica() {
		return nil, &spash.ReplicationError{Op: "new-primary", Shard: -1,
			Epoch: db.Epoch(), Err: spash.ErrNotPrimary}
	}
	return &Primary{db: db, s: db.Session(), t: t}, nil
}

// DB returns the wrapped database.
func (p *Primary) DB() *spash.DB { return p.db }

// Session returns the primary's local session (reads are local-only;
// they never touch the transport).
func (p *Primary) Session() *spash.Session { return p.s }

// Close releases the primary's session (the DB stays open).
func (p *Primary) Close() { p.s.Close() }

// Get reads locally (primary reads never consult the peer).
func (p *Primary) Get(key, dst []byte) ([]byte, bool, error) {
	return p.s.Get(key, dst)
}

// Insert applies the upsert locally, then ships it. The write is
// acknowledged (nil error) only once it is on both nodes.
func (p *Primary) Insert(key, val []byte) error {
	if err := p.s.Insert(key, val); err != nil {
		return err
	}
	return p.shipRecord(RecInsert, key, val)
}

// Update applies the update locally, then ships it (as an upsert —
// the replica converges on the primary's post-state either way).
// A miss is not shipped.
func (p *Primary) Update(key, val []byte) (bool, error) {
	found, err := p.s.Update(key, val)
	if err != nil || !found {
		return found, err
	}
	return true, p.shipRecord(RecUpdate, key, val)
}

// Delete applies the delete locally, then ships it. A miss is not
// shipped.
func (p *Primary) Delete(key []byte) (bool, error) {
	found, err := p.s.Delete(key)
	if err != nil || !found {
		return found, err
	}
	return true, p.shipRecord(RecDelete, key, nil)
}

func (p *Primary) shipRecord(op RecOp, key, val []byte) error {
	sh := spash.ShardOf(key, p.db.Shards())
	p.seq++
	f := &Frame{Kind: FrameRecord, Epoch: p.db.Epoch(), Seq: p.seq,
		Shard: sh, Op: op, Key: key, Val: val}
	// Ship time is wall-clock, not virtual: the transport (a future
	// wire layer) is outside the performance model's clock. It feeds
	// the repl_ship phase histogram directly.
	start := time.Now()
	err := p.t.Ship(f)
	reg := p.db.Indexes()[sh].Obs()
	reg.ObservePhaseNS(obs.PhaseReplShip, f.Seq, time.Since(start).Nanoseconds())
	if err != nil {
		return fmt.Errorf("repl: shipping record: %w", err)
	}
	reg.Inc(obs.CReplShipRecords)
	return nil
}

// FullSync ships every shard's full live contents as one seal-verified
// segment-range frame per shard, seeding a fresh (empty) replica.
// The primary must be quiescent for the export walk (same contract as
// Fsck). Returns the number of pairs shipped.
func (p *Primary) FullSync() (int, error) {
	shipped := 0
	for i, ix := range p.db.Indexes() {
		kvs, err := exportRange(p.db, i, 0, 0)
		if err != nil {
			return shipped, &spash.ReplicationError{Op: "full-sync", Shard: i,
				Epoch: p.db.Epoch(), Err: err}
		}
		p.seq++
		f := &Frame{Kind: FrameSegment, Epoch: p.db.Epoch(), Seq: p.seq,
			Shard: i, Prefix: 0, Depth: 0, KVs: kvs}
		if err := p.t.Ship(f); err != nil {
			return shipped, fmt.Errorf("repl: shipping segment range: %w", err)
		}
		ix.Obs().Inc(obs.CReplShipSegments)
		shipped += len(kvs)
	}
	return shipped, nil
}

// RepairReport tallies one ReadRepair pass.
type RepairReport struct {
	// Ranges is the number of quarantined ranges fetched from the
	// peer; Fetched the pairs the peer returned; Restored the pairs
	// that were missing locally and were re-inserted.
	Ranges   int `json:"ranges"`
	Fetched  int `json:"fetched"`
	Restored int `json:"restored"`
}

// ReadRepair heals the losses of a local repair pass from the peer:
// for every quarantine in the fsck report it fetches the range's
// authoritative contents over the transport and re-inserts the pairs
// that are missing locally. Keys the quarantine salvaged (or that a
// later write replaced) are left alone — the local survivor wins; only
// absent keys are restored, so the pass is idempotent. Run it after
// Session.Fsck(true) on a quiescent primary.
func (p *Primary) ReadRepair(rep *spash.FsckReport) (*RepairReport, error) {
	out := &RepairReport{}
	for i := range rep.Repairs {
		q := &rep.Repairs[i]
		kvs, err := p.t.Fetch(FetchReq{Shard: q.Shard, Prefix: q.Prefix, Depth: q.Depth})
		if err != nil {
			return out, &spash.ReplicationError{Op: "fetch", Shard: q.Shard,
				Epoch: p.db.Epoch(), Err: err}
		}
		out.Ranges++
		out.Fetched += len(kvs)
		restored := int64(0)
		for _, kv := range kvs {
			if _, found, gerr := p.s.Get(kv.Key, nil); gerr == nil && found {
				continue
			}
			if ierr := p.s.Insert(kv.Key, kv.Val); ierr != nil {
				return out, fmt.Errorf("repl: restoring key: %w", ierr)
			}
			out.Restored++
			restored++
		}
		p.db.Indexes()[q.Shard].Obs().Add(obs.CReplRepairKeys, restored)
	}
	return out, nil
}

// Replica wraps a replica-role DB with the apply side of the
// protocol. All entry points (Apply, Serve, Pause/Resume, Promote)
// are serialised by one mutex: apply order is ship order.
type Replica struct {
	mu     sync.Mutex
	db     *spash.DB
	s      *spash.Session // applier session (write-fence exempt)
	next   uint64         // last applied (or buffered) sequence number
	paused bool
	buf    []*Frame
}

// NewReplica wraps db, which must hold the replica role
// (spash.Options.Replica).
func NewReplica(db *spash.DB) (*Replica, error) {
	if !db.IsReplica() {
		return nil, &spash.ReplicationError{Op: "new-replica", Shard: -1,
			Epoch: db.Epoch(), Err: errors.New("db holds the primary role")}
	}
	return &Replica{db: db, s: db.ApplierSession()}, nil
}

// DB returns the wrapped database (reads via its ordinary Sessions).
func (r *Replica) DB() *spash.DB { return r.db }

// Close releases the applier session (the DB stays open).
func (r *Replica) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.Close()
}

// Pause buffers incoming frames instead of applying them (models a
// slow or stalled applier; the buffered frames are the replica's lag).
func (r *Replica) Pause() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = true
}

// Resume drains the buffered frames through the apply path and stops
// buffering.
func (r *Replica) Resume() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	defer r.setLagGauges()
	r.paused = false
	buf := r.buf
	r.buf = nil
	for _, f := range buf {
		if err := r.applyLocked(f); err != nil {
			return err
		}
	}
	return nil
}

// Lag returns the number of shipped frames not yet applied.
func (r *Replica) Lag() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// LagBytes returns the payload bytes of the shipped frames not yet
// applied.
func (r *Replica) LagBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.buf {
		n += frameBytes(f)
	}
	return n
}

// frameBytes is a frame's payload size (key + value bytes, summed
// over a segment frame's pairs).
func frameBytes(f *Frame) int {
	n := len(f.Key) + len(f.Val)
	for _, kv := range f.KVs {
		n += len(kv.Key) + len(kv.Val)
	}
	return n
}

// setLagGauges republishes the per-shard lag levels (records and
// bytes behind) onto each shard's registry, where Snapshot and the
// Prometheus exporter pick them up. Caller holds r.mu.
func (r *Replica) setLagGauges() {
	nsh := r.db.Shards()
	recs := make([]int64, nsh)
	bytes := make([]int64, nsh)
	for _, f := range r.buf {
		if f.Shard >= 0 && f.Shard < nsh {
			recs[f.Shard]++
			bytes[f.Shard] += int64(frameBytes(f))
		}
	}
	for i, ix := range r.db.Indexes() {
		ix.Obs().SetGauge(obs.GReplLagRecords, recs[i])
		ix.Obs().SetGauge(obs.GReplLagBytes, bytes[i])
	}
}

// Apply ingests one frame: epoch fencing first, sequence-gap check,
// then the payload goes through the ordinary crash-consistent
// operation paths of the applier session — never a raw image install,
// so the replica's devices are recoverable at every instant.
func (r *Replica) Apply(f *Frame) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.db.IsReplica() {
		// Promoted: this node IS the primary now; whoever is still
		// shipping lost the race.
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(), Err: spash.ErrNotPrimary}
	}
	if f.Epoch < r.db.Epoch() {
		// Stale epoch: the sender was deposed by a promotion it has
		// not observed. Fencing, not transport failure.
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(), Err: spash.ErrNotPrimary}
	}
	if f.Seq != r.next+1 {
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(),
			Err:   fmt.Errorf("sequence gap (want %d, got %d): %w", r.next+1, f.Seq, spash.ErrReplicaLag)}
	}
	r.next = f.Seq
	if r.paused {
		r.buf = append(r.buf, f)
		r.setLagGauges()
		return nil
	}
	return r.applyLocked(f)
}

func (r *Replica) applyLocked(f *Frame) error {
	ix := r.db.Indexes()[f.Shard]
	switch f.Kind {
	case FrameRecord:
		switch f.Op {
		case RecInsert, RecUpdate:
			if err := r.s.Insert(f.Key, f.Val); err != nil {
				return fmt.Errorf("repl: applying record: %w", err)
			}
		case RecDelete:
			if _, err := r.s.Delete(f.Key); err != nil {
				return fmt.Errorf("repl: applying delete: %w", err)
			}
		default:
			return fmt.Errorf("repl: unknown record op %d", int(f.Op))
		}
		ix.Obs().Inc(obs.CReplApplyRecords)
		return nil
	case FrameSegment:
		for _, kv := range f.KVs {
			if err := r.s.Insert(kv.Key, kv.Val); err != nil {
				return fmt.Errorf("repl: applying segment range: %w", err)
			}
		}
		ix.Obs().Inc(obs.CReplApplySegments)
		return nil
	}
	return fmt.Errorf("repl: unknown frame kind %d", int(f.Kind))
}

// Serve answers a peer's range fetch with the authoritative live
// contents of the (Shard, Prefix, Depth) range, exported segment by
// seal-verified segment. The replica should be quiescent for the walk
// (read-repair runs inside a repair window).
func (r *Replica) Serve(req FetchReq) ([]KV, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if req.Shard < 0 || req.Shard >= r.db.Shards() {
		return nil, &spash.ReplicationError{Op: "fetch", Shard: req.Shard,
			Epoch: r.db.Epoch(), Err: fmt.Errorf("no such shard (have %d)", r.db.Shards())}
	}
	kvs, err := exportRange(r.db, req.Shard, req.Prefix, req.Depth)
	if err != nil {
		return nil, &spash.ReplicationError{Op: "fetch", Shard: req.Shard,
			Epoch: r.db.Epoch(), Err: err}
	}
	r.db.Indexes()[req.Shard].Obs().Inc(obs.CReplFetches)
	return kvs, nil
}

// Promote turns the replica into the primary: refuse if any shipped
// frame is still unapplied (promoting over lag would drop writes the
// old primary acknowledged), then durably advance the epoch on every
// shard and drop the write fence (spash.DB.Promote). Returns the new
// epoch. After promotion, Apply rejects everything — the deposed
// primary's frames by the epoch fence.
func (r *Replica) Promote() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) > 0 {
		return 0, &spash.ReplicationError{Op: "promote", Shard: -1,
			Epoch: r.db.Epoch(),
			Err:   fmt.Errorf("%d frames unapplied: %w", len(r.buf), spash.ErrReplicaLag)}
	}
	return r.db.Promote()
}

// Rejoin simulates the replica node itself power-cycling: the applier
// session closes, every device takes a crash, and the replica reopens
// through spash.RecoverAll — the same recovery path a standalone
// database uses, which is the point: because apply only ever goes
// through ordinary operation paths, a replica image is always
// recoverable. Under eADR nothing is lost and the replica resumes in
// place; under ADR the roll-back of unflushed applies means the
// replica must be re-seeded (FullSync) before it can be trusted
// again.
func (r *Replica) Rejoin(opts spash.Options) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.Close()
	r.db.Close()
	platforms := r.db.Platforms()
	r.db.Crash()
	opts.Replica = true
	db, err := spash.RecoverAll(platforms, opts)
	if err != nil {
		return fmt.Errorf("repl: rejoining: %w", err)
	}
	r.db = db
	r.s = db.ApplierSession()
	return nil
}

// exportRange collects one shard's live pairs in the (prefix, depth)
// hash range through the seal-verified export walk.
func exportRange(db *spash.DB, sh int, prefix uint64, depth uint) ([]KV, error) {
	ix := db.Indexes()[sh]
	c := ix.Pool().NewCtx()
	defer c.Release()
	var out []KV
	err := ix.ExportRange(c, prefix, depth, func(k, v []byte) error {
		out = append(out, KV{
			Key: append([]byte(nil), k...),
			Val: append([]byte(nil), v...),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
