// Package repl replicates a spash database to a second node: a
// Primary applies client writes locally and ships them — committed
// op records in steady state, seal-verified segment ranges for bulk
// seeding — to a Replica over a Transport, and a promotion protocol
// turns the replica into the primary when the original dies.
//
// The paper's persistent-cache durability guarantee ends at the
// machine boundary: eADR makes visibility imply durability on one
// node, and this package carries the acknowledged state to a second
// fault domain. The shipping discipline mirrors the single-node trust
// rules — a segment range leaves a device only after it verifies
// against its seals (core.Index.ExportRange), and a replica's devices
// are mutated only through the ordinary crash-consistent operation
// paths, so a replica image is at every instant something
// spash.RecoverAll can reopen (the failover drills in
// internal/crashtest promote mid-crash-sweep and hold the durability
// oracle against the survivor).
//
// Split-brain fencing is the promotion epoch stamped into every
// shard's pool geometry: frames carry the shipping primary's epoch,
// promotion durably bumps the replica's epoch before the write fence
// drops, and a deposed primary's later frames arrive with a stale
// epoch and fail apply with spash.ErrNotPrimary.
//
// Delivery is hardened against an arbitrarily hostile transport
// (drop, delay, duplication, reordering, partition — see
// FaultyTransport and the chaos drills in internal/crashtest):
//
//   - Shipping is at-least-once: every Ship attempt runs under a
//     per-frame deadline and a bounded retry policy with exponential
//     backoff and jitter (RetryPolicy). A timed-out frame may still
//     have been delivered, so retries produce duplicates by design.
//   - Apply is exactly-once: the replica acks-and-drops duplicates
//     (Seq at or below its cursor), buffers ahead-of-cursor frames in
//     a bounded reorder window, and persists a durable applied-seq
//     cursor (core.Index.SetAppliedSeq on shard 0) after every apply.
//   - When retries exhaust, the primary trips a circuit breaker into
//     degraded-async mode: writes keep succeeding locally, frames
//     spill to a bounded queue, health reports DEGRADED, and a
//     background prober half-opens the breaker and drains the queue
//     once the transport recovers.
//   - A cursor handshake (Transport.Hello) lets the primary detect
//     what the replica is missing: gaps inside the replay log are
//     re-shipped, anything older — including an ADR Rejoin that
//     rolled back applies the cursor covers — triggers an automated
//     seal-verified FullSync re-seed. No operator step is needed.
//
// The Transport is in-process today; the interface is shaped so a
// future spash-serve wire layer can slot in (frames and fetch
// requests are plain value types with no shared-memory hooks).
package repl

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"spash"
	"spash/internal/obs"
)

// KV is one shipped key-value pair.
type KV struct {
	Key []byte `json:"key"`
	Val []byte `json:"val"`
}

// FrameKind discriminates replication messages.
type FrameKind int

const (
	// FrameRecord ships one committed client operation.
	FrameRecord FrameKind = iota
	// FrameSegment ships a seal-verified segment range (bulk seeding:
	// full sync of a fresh replica, or re-seeding after a rejoin).
	FrameSegment
)

// RecOp is the operation of a FrameRecord.
type RecOp int

const (
	RecInsert RecOp = iota
	RecUpdate
	RecDelete
)

// Frame is one replication message. Every frame carries the shipping
// primary's promotion epoch (fencing) and a per-primary sequence
// number (duplicate and gap detection).
type Frame struct {
	Kind  FrameKind
	Epoch uint64
	Seq   uint64
	// Shard is the owning shard (same shard layout on both nodes; the
	// key routing is derived from the key hash, so it agrees by
	// construction).
	Shard int

	// FrameRecord payload.
	Op  RecOp
	Key []byte
	Val []byte

	// FrameSegment payload: every live pair of the (Prefix, Depth)
	// hash range. Depth 0 is the whole shard. Replace marks the
	// payload authoritative: the replica deletes local keys in the
	// range that the payload lacks before upserting it, and re-anchors
	// its sequence cursor at Seq — the frame that carries a FullSync
	// or an automated re-seed.
	Prefix  uint64
	Depth   uint
	Replace bool
	KVs     []KV
}

// FetchReq asks a peer for the authoritative live contents of one
// hash range (replica-backed read-repair).
type FetchReq struct {
	Shard  int
	Prefix uint64
	Depth  uint
}

// Hello is the replica's answer to the cursor handshake: its current
// promotion epoch, the durable applied-sequence cursor (the highest
// frame whose apply is on its devices), and whether its image can no
// longer anchor the record stream (an ADR rejoin rolled back applies
// the cursor covers) and must be re-seeded.
type Hello struct {
	Epoch       uint64
	AppliedSeq  uint64
	NeedsReseed bool
}

// Transport carries frames to, and range fetches from, the peer.
// Ship must be synchronous: it returns only after the peer accepted
// (or rejected) the frame, so a nil return means the write is on both
// nodes. A wire implementation would put acknowledgement latency
// here; the retry policy treats any Ship error that is not a typed
// protocol refusal as transient. Hello is the cheap cursor handshake
// the primary probes and resyncs with.
type Transport interface {
	Ship(f *Frame) error
	Fetch(req FetchReq) ([]KV, error)
	Hello() (Hello, error)
}

// InProc is the in-process Transport: frames apply synchronously to a
// Replica in the same address space. The unit of the failover drills.
type InProc struct {
	R *Replica
}

func (t *InProc) Ship(f *Frame) error              { return t.R.Apply(f) }
func (t *InProc) Fetch(req FetchReq) ([]KV, error) { return t.R.Serve(req) }
func (t *InProc) Hello() (Hello, error)            { return t.R.Hello() }

// replayEntry is one delivered frame retained for cursor-handshake
// replay. f is nil for frames that cannot be replayed (segment
// ranges): a gap covering one forces a re-seed.
type replayEntry struct {
	seq uint64
	f   *Frame
}

// Primary wraps a primary-role DB with shipping: every write applies
// locally first and then ships to the peer before it is acknowledged
// (synchronously while the circuit breaker is closed; via the spill
// queue in degraded-async mode). Like the Session it wraps, a Primary
// is single-worker state for writes — one per goroutine; the
// background prober synchronises with the write path internally.
type Primary struct {
	db   *spash.DB
	s    *spash.Session
	t    Transport
	opts PrimaryOptions

	mu      sync.Mutex
	seq     uint64 // last allocated frame sequence
	rng     *rand.Rand
	state   BreakerState
	reason  string
	deposed bool
	closed  bool

	spill      []*Frame
	spillBytes int64
	// shedGap marks that a spill-queue overflow shed at least one
	// frame: its sequence number is burned and its payload exists only
	// in the local image, so the next resync must re-seed rather than
	// trust the delivered cursor.
	shedGap bool

	replay    []replayEntry
	delivered uint64 // highest sequence the peer acknowledged

	proberOn bool
	// done is closed (once) by Close to wake the prober out of its
	// ticker wait; proberWG joins it so Close returns only after the
	// prober goroutine has exited.
	done     chan struct{}
	proberWG sync.WaitGroup
}

// NewPrimary wraps db (which must hold the primary role) for shipping
// over t with default hardening options.
func NewPrimary(db *spash.DB, t Transport) (*Primary, error) {
	return NewPrimaryWith(db, t, PrimaryOptions{})
}

// NewPrimaryWith wraps db for shipping over t under explicit retry,
// spill, replay and prober options.
func NewPrimaryWith(db *spash.DB, t Transport, popts PrimaryOptions) (*Primary, error) {
	if db.IsReplica() {
		return nil, &spash.ReplicationError{Op: "new-primary", Shard: -1,
			Epoch: db.Epoch(), Err: spash.ErrNotPrimary}
	}
	popts = popts.withDefaults()
	return &Primary{db: db, s: db.Session(), t: t, opts: popts,
		rng:  rand.New(rand.NewSource(popts.Retry.JitterSeed)),
		done: make(chan struct{})}, nil
}

// DB returns the wrapped database.
func (p *Primary) DB() *spash.DB { return p.db }

// Session returns the primary's local session (reads are local-only;
// they never touch the transport).
func (p *Primary) Session() *spash.Session { return p.s }

// Close releases the primary's session (the DB stays open) and stops
// the background prober, waiting for it to exit — after Close returns
// no goroutine of this Primary is running.
func (p *Primary) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		close(p.done)
	}
	p.proberWG.Wait()
	if !already {
		p.s.Close()
	}
}

// Get reads locally (primary reads never consult the peer).
func (p *Primary) Get(key, dst []byte) ([]byte, bool, error) {
	return p.s.Get(key, dst)
}

// Insert applies the upsert locally, then ships it. A nil return
// means the write is on both nodes while the breaker is closed, or
// acknowledged locally and parked in the spill queue in
// degraded-async mode (health reports DEGRADED for the duration).
func (p *Primary) Insert(key, val []byte) error {
	if err := p.s.Insert(key, val); err != nil {
		return err
	}
	return p.shipRecord(RecInsert, key, val)
}

// Update applies the update locally, then ships it (as an upsert —
// the replica converges on the primary's post-state either way).
// A miss is not shipped.
func (p *Primary) Update(key, val []byte) (bool, error) {
	found, err := p.s.Update(key, val)
	if err != nil || !found {
		return found, err
	}
	return true, p.shipRecord(RecUpdate, key, val)
}

// Delete applies the delete locally, then ships it. A miss is not
// shipped.
func (p *Primary) Delete(key []byte) (bool, error) {
	found, err := p.s.Delete(key)
	if err != nil || !found {
		return found, err
	}
	return true, p.shipRecord(RecDelete, key, nil)
}

func (p *Primary) shipRecord(op RecOp, key, val []byte) error {
	sh := spash.ShardOf(key, p.db.Shards())
	// Ship time is wall-clock, not virtual: the transport (a future
	// wire layer) is outside the performance model's clock. It feeds
	// the repl_ship phase histogram directly, retries included.
	start := time.Now()
	p.mu.Lock()
	p.seq++
	// The frame owns its payload: callers reuse key/val buffers, and
	// the frame may outlive the call in the spill queue or replay log.
	f := &Frame{Kind: FrameRecord, Epoch: p.db.Epoch(), Seq: p.seq,
		Shard: sh, Op: op,
		Key: append([]byte(nil), key...), Val: append([]byte(nil), val...)}
	err := p.shipFrameLocked(f)
	p.mu.Unlock()
	reg := p.db.Indexes()[sh].Obs()
	reg.ObservePhaseNS(obs.PhaseReplShip, f.Seq, time.Since(start).Nanoseconds())
	if err != nil {
		return fmt.Errorf("repl: shipping record: %w", err)
	}
	reg.Inc(obs.CReplShipRecords)
	return nil
}

// FullSync ships every shard's full live contents as one seal-verified
// segment-range frame per shard. The frames carry Replace semantics,
// so the pass both seeds a fresh (empty) replica and re-converges a
// diverged one (stale local keys are deleted on the far side). The
// primary must be quiescent for the export walk (same contract as
// Fsck). Returns the number of pairs shipped.
func (p *Primary) FullSync() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.syncLocked("full-sync")
}

// syncLocked ships one Replace segment frame per shard through the
// retry policy. Caller holds p.mu.
func (p *Primary) syncLocked(op string) (int, error) {
	shipped := 0
	for i, ix := range p.db.Indexes() {
		kvs, err := exportRange(p.db, i, 0, 0)
		if err != nil {
			return shipped, &spash.ReplicationError{Op: op, Shard: i,
				Epoch: p.db.Epoch(), Err: err}
		}
		p.seq++
		f := &Frame{Kind: FrameSegment, Epoch: p.db.Epoch(), Seq: p.seq,
			Shard: i, Prefix: 0, Depth: 0, Replace: true, KVs: kvs}
		if err := p.shipRetryLocked(f); err != nil {
			return shipped, fmt.Errorf("repl: shipping segment range: %w", err)
		}
		p.logDeliveredLocked(f.Seq, nil) // segment ranges are not replayable
		ix.Obs().Inc(obs.CReplShipSegments)
		shipped += len(kvs)
	}
	return shipped, nil
}

// RepairReport tallies one ReadRepair pass.
type RepairReport struct {
	// Ranges is the number of quarantined ranges fetched from the
	// peer; Fetched the pairs the peer returned; Restored the pairs
	// that were missing locally and were re-inserted.
	Ranges   int `json:"ranges"`
	Fetched  int `json:"fetched"`
	Restored int `json:"restored"`
}

// ReadRepair heals the losses of a local repair pass from the peer:
// for every quarantine in the fsck report it fetches the range's
// authoritative contents over the transport and re-inserts the pairs
// that are missing locally. Keys the quarantine salvaged (or that a
// later write replaced) are left alone — the local survivor wins; only
// absent keys are restored, so the pass is idempotent. Run it after
// Session.Fsck(true) on a quiescent primary.
func (p *Primary) ReadRepair(rep *spash.FsckReport) (*RepairReport, error) {
	out := &RepairReport{}
	for i := range rep.Repairs {
		q := &rep.Repairs[i]
		kvs, err := p.t.Fetch(FetchReq{Shard: q.Shard, Prefix: q.Prefix, Depth: q.Depth})
		if err != nil {
			return out, &spash.ReplicationError{Op: "fetch", Shard: q.Shard,
				Epoch: p.db.Epoch(), Err: err}
		}
		out.Ranges++
		out.Fetched += len(kvs)
		restored := int64(0)
		for _, kv := range kvs {
			if _, found, gerr := p.s.Get(kv.Key, nil); gerr == nil && found {
				continue
			}
			if ierr := p.s.Insert(kv.Key, kv.Val); ierr != nil {
				return out, fmt.Errorf("repl: restoring key: %w", ierr)
			}
			out.Restored++
			restored++
		}
		p.db.Indexes()[q.Shard].Obs().Add(obs.CReplRepairKeys, restored)
	}
	return out, nil
}

// ReplicaOptions bound the replica's buffering.
type ReplicaOptions struct {
	// ReorderWindow caps the ahead-of-cursor frames buffered while a
	// gap fills (out-of-order delivery). Past the cap — or with the
	// window disabled — an ahead frame is rejected with ErrReplicaLag
	// and the sender must retry or resync. Default 64; negative
	// disables buffering (strict in-order apply).
	ReorderWindow int
	// PauseLimit caps the Pause buffer: past it, incoming frames are
	// shed with ErrReplicaLag (counted in obs as repl_sheds) instead
	// of growing memory without bound. Default 4096; negative means
	// unbounded.
	PauseLimit int
}

func (ro ReplicaOptions) withDefaults() ReplicaOptions {
	if ro.ReorderWindow == 0 {
		ro.ReorderWindow = 64
	}
	if ro.ReorderWindow < 0 {
		ro.ReorderWindow = 0
	}
	if ro.PauseLimit == 0 {
		ro.PauseLimit = 4096
	}
	return ro
}

// Replica wraps a replica-role DB with the apply side of the
// protocol. All entry points (Apply, Serve, Hello, Pause/Resume,
// Promote) are serialised by one mutex: apply order is cursor order.
type Replica struct {
	mu   sync.Mutex
	db   *spash.DB
	s    *spash.Session // applier session (write-fence exempt)
	opts ReplicaOptions

	// next is the highest accepted (applied or pause-buffered)
	// sequence; applied mirrors the durable applied-seq cursor on
	// shard 0 (everything at or below it is on the devices).
	next    uint64
	applied uint64
	// needsReseed marks an image that can no longer anchor the record
	// stream: an ADR rejoin rolled back applies the cursor covers.
	// Only a Replace segment frame (automated re-seed) clears it.
	needsReseed bool
	// fresh is set while no frame has been accepted since (re)joining.
	// A fresh replica provably has nothing in reorder flight (its
	// window was dropped with the rest of volatile state), so an
	// ahead-of-cursor frame means loss, not reordering: it is refused
	// with ErrReplicaLag — the signal that makes the primary replay or
	// re-seed the gap instead of the window silently acking a frame
	// whose predecessors will never arrive.
	fresh bool

	paused bool
	buf    []*Frame
	window map[uint64]*Frame
}

// NewReplica wraps db, which must hold the replica role
// (spash.Options.Replica), with default buffering bounds.
func NewReplica(db *spash.DB) (*Replica, error) {
	return NewReplicaWith(db, ReplicaOptions{})
}

// NewReplicaWith wraps db under explicit buffering bounds. The stream
// cursor starts at the durable applied cursor on the image (0 on a
// fresh replica).
func NewReplicaWith(db *spash.DB, ropts ReplicaOptions) (*Replica, error) {
	if !db.IsReplica() {
		return nil, &spash.ReplicationError{Op: "new-replica", Shard: -1,
			Epoch: db.Epoch(), Err: errors.New("db holds the primary role")}
	}
	applied := db.Indexes()[0].AppliedSeq()
	return &Replica{db: db, s: db.ApplierSession(), opts: ropts.withDefaults(),
		next: applied, applied: applied, fresh: true,
		window: map[uint64]*Frame{}}, nil
}

// DB returns the wrapped database (reads via its ordinary Sessions).
func (r *Replica) DB() *spash.DB { return r.db }

// Close releases the applier session (the DB stays open).
func (r *Replica) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.Close()
}

// Hello answers the cursor handshake: the durable applied cursor and
// whether the image must be re-seeded.
func (r *Replica) Hello() (Hello, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Hello{Epoch: r.db.Epoch(), AppliedSeq: r.applied,
		NeedsReseed: r.needsReseed}, nil
}

// AppliedSeq returns the durable applied-sequence cursor.
func (r *Replica) AppliedSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Pause buffers incoming frames instead of applying them (models a
// slow or stalled applier; the buffered frames are the replica's
// lag). The buffer is bounded by ReplicaOptions.PauseLimit: past it,
// frames are shed with ErrReplicaLag.
func (r *Replica) Pause() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = true
}

// Resume drains the buffered frames through the apply path and stops
// buffering.
func (r *Replica) Resume() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	defer r.setLagGauges()
	r.paused = false
	buf := r.buf
	r.buf = nil
	for _, f := range buf {
		if err := r.applyLocked(f); err != nil {
			return err
		}
	}
	return r.drainWindowLocked()
}

// Lag returns the number of shipped frames not yet applied (the pause
// buffer plus the reorder window).
func (r *Replica) Lag() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf) + len(r.window)
}

// LagBytes returns the payload bytes of the shipped frames not yet
// applied.
func (r *Replica) LagBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.buf {
		n += frameBytes(f)
	}
	for _, f := range r.window {
		n += frameBytes(f)
	}
	return n
}

// frameBytes is a frame's payload size (key + value bytes, summed
// over a segment frame's pairs).
func frameBytes(f *Frame) int {
	n := len(f.Key) + len(f.Val)
	for _, kv := range f.KVs {
		n += len(kv.Key) + len(kv.Val)
	}
	return n
}

// cloneFrame deep-copies a frame the receiver retains beyond the call
// (reorder window, pause buffer, transport hold queues): senders own
// and may reuse the original's payload slices.
func cloneFrame(f *Frame) *Frame {
	c := *f
	c.Key = append([]byte(nil), f.Key...)
	c.Val = append([]byte(nil), f.Val...)
	if f.KVs != nil {
		c.KVs = make([]KV, len(f.KVs))
		for i := range f.KVs {
			c.KVs[i] = KV{
				Key: append([]byte(nil), f.KVs[i].Key...),
				Val: append([]byte(nil), f.KVs[i].Val...),
			}
		}
	}
	return &c
}

// setLagGauges republishes the per-shard lag levels (records and
// bytes behind) onto each shard's registry, where Snapshot and the
// Prometheus exporter pick them up. Caller holds r.mu.
func (r *Replica) setLagGauges() {
	nsh := r.db.Shards()
	recs := make([]int64, nsh)
	bytes := make([]int64, nsh)
	count := func(f *Frame) {
		if f.Shard >= 0 && f.Shard < nsh {
			recs[f.Shard]++
			bytes[f.Shard] += int64(frameBytes(f))
		}
	}
	for _, f := range r.buf {
		count(f)
	}
	for _, f := range r.window {
		count(f)
	}
	for i, ix := range r.db.Indexes() {
		ix.Obs().SetGauge(obs.GReplLagRecords, recs[i])
		ix.Obs().SetGauge(obs.GReplLagBytes, bytes[i])
	}
}

// pauseFullLocked reports whether the pause buffer is at its cap.
func (r *Replica) pauseFullLocked() bool {
	return r.opts.PauseLimit > 0 && len(r.buf) >= r.opts.PauseLimit
}

// Apply ingests one frame: epoch fencing first, then idempotent
// cursor accounting — duplicates (Seq at or below the cursor) are
// acked and dropped, ahead-of-cursor frames buffer in the bounded
// reorder window, and only the next-in-stream frame reaches the
// payload path, which goes through the ordinary crash-consistent
// operation paths of the applier session — never a raw image install,
// so the replica's devices are recoverable at every instant. A
// Replace segment frame re-anchors the cursor (FullSync / automated
// re-seed).
func (r *Replica) Apply(f *Frame) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.db.IsReplica() {
		// Promoted: this node IS the primary now; whoever is still
		// shipping lost the race.
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(), Err: spash.ErrNotPrimary}
	}
	if f.Epoch < r.db.Epoch() {
		// Stale epoch: the sender was deposed by a promotion it has
		// not observed. Fencing, not transport failure.
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(), Err: spash.ErrNotPrimary}
	}
	if f.Shard < 0 || f.Shard >= r.db.Shards() {
		// Frames arrive from the wire (REPL.SHIP gob payload): a
		// hostile or corrupt shard number must refuse typed, not panic
		// the replica — and it must refuse before the cursor accounting
		// below could acknowledge the frame.
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(),
			Err:   fmt.Errorf("no such shard (have %d)", r.db.Shards())}
	}
	reg := r.db.Indexes()[boundShard(r.db, f.Shard)].Obs()
	anchor := f.Kind == FrameSegment && f.Replace
	if r.needsReseed && !anchor {
		// The image rolled back under the cursor: record frames cannot
		// anchor (a duplicate ack here would vouch for data the crash
		// took). Only a re-seed recovers the stream.
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(),
			Err: fmt.Errorf("applied cursor %d unanchored after rollback: %w",
				r.applied, spash.ErrNeedsReseed)}
	}
	switch {
	case anchor && f.Seq > r.next:
		// Re-anchor below: the authoritative range image subsumes
		// whatever sits between the cursor and Seq.
	case f.Seq <= r.next:
		reg.Inc(obs.CReplApplyDupes)
		return nil // duplicate: acked and dropped
	case f.Seq == r.next+1:
		// In order: accepted below.
	default:
		// Ahead of the cursor: a gap is still in flight somewhere —
		// unless nothing has been accepted since (re)joining, in which
		// case the gap is known loss and buffering would ack a frame
		// that can never apply. Refuse typed; the sender resyncs.
		if r.fresh {
			return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
				Epoch: r.db.Epoch(),
				Err: fmt.Errorf("stream unanchored since (re)join (cursor %d, got %d): %w",
					r.next, f.Seq, spash.ErrReplicaLag)}
		}
		if _, held := r.window[f.Seq]; held {
			reg.Inc(obs.CReplApplyDupes)
			return nil
		}
		if r.opts.ReorderWindow > 0 && len(r.window) < r.opts.ReorderWindow {
			r.window[f.Seq] = cloneFrame(f)
			reg.Inc(obs.CReplReorderBuffered)
			r.setLagGauges()
			return nil
		}
		reg.Inc(obs.CReplSheds)
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(),
			Err: fmt.Errorf("sequence gap (want %d, got %d, reorder window full): %w",
				r.next+1, f.Seq, spash.ErrReplicaLag)}
	}
	if r.paused && r.pauseFullLocked() {
		reg.Inc(obs.CReplSheds)
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(),
			Err: fmt.Errorf("pause buffer full (%d frames): %w",
				len(r.buf), spash.ErrReplicaLag)}
	}
	if err := r.acceptLocked(f); err != nil {
		return err
	}
	return r.drainWindowLocked()
}

// drainWindowLocked applies (or pause-buffers) every now-consecutive
// frame held in the reorder window. Frames that cannot move into a
// full pause buffer stay in the window — they were already
// acknowledged, so they must not be shed.
func (r *Replica) drainWindowLocked() error {
	for {
		nf, ok := r.window[r.next+1]
		if !ok {
			return nil
		}
		if r.paused && r.pauseFullLocked() {
			return nil
		}
		delete(r.window, r.next+1)
		if err := r.acceptLocked(nf); err != nil {
			return err
		}
	}
}

// acceptLocked advances the cursor over f and applies it (or buffers
// it while paused). Caller holds r.mu and has validated the sequence.
func (r *Replica) acceptLocked(f *Frame) error {
	if f.Kind == FrameSegment && f.Replace {
		// The re-anchor subsumes every held frame at or below it.
		for seq := range r.window {
			if seq <= f.Seq {
				delete(r.window, seq)
			}
		}
		r.needsReseed = false
	}
	r.fresh = false
	r.next = f.Seq
	if r.paused {
		r.buf = append(r.buf, cloneFrame(f))
		r.setLagGauges()
		return nil
	}
	r.setLagGauges()
	return r.applyLocked(f)
}

func (r *Replica) applyLocked(f *Frame) error {
	if f.Shard < 0 || f.Shard >= r.db.Shards() {
		// Apply refuses out-of-range shards on entry; this guards the
		// indexing below against frames resurfacing from the reorder
		// window or pause buffer of an older process image.
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(),
			Err:   fmt.Errorf("no such shard (have %d)", r.db.Shards())}
	}
	ix := r.db.Indexes()[f.Shard]
	switch f.Kind {
	case FrameRecord:
		switch f.Op {
		case RecInsert, RecUpdate:
			if err := r.s.Insert(f.Key, f.Val); err != nil {
				return fmt.Errorf("repl: applying record: %w", err)
			}
		case RecDelete:
			if _, err := r.s.Delete(f.Key); err != nil {
				return fmt.Errorf("repl: applying delete: %w", err)
			}
		default:
			return fmt.Errorf("repl: unknown record op %d", int(f.Op))
		}
		ix.Obs().Inc(obs.CReplApplyRecords)
	case FrameSegment:
		if f.Replace {
			if err := r.reconcileLocked(f); err != nil {
				return err
			}
		} else {
			for _, kv := range f.KVs {
				if err := r.s.Insert(kv.Key, kv.Val); err != nil {
					return fmt.Errorf("repl: applying segment range: %w", err)
				}
			}
		}
		ix.Obs().Inc(obs.CReplApplySegments)
	default:
		return fmt.Errorf("repl: unknown frame kind %d", int(f.Kind))
	}
	r.persistCursorLocked(f.Seq)
	return nil
}

// reconcileLocked installs an authoritative range image: local keys
// in the range that the payload lacks are deleted (a delete the
// replica missed must not survive a re-seed), then every payload pair
// upserts. All mutations go through the ordinary crash-consistent
// operation paths, so the image stays recoverable mid-reconcile.
func (r *Replica) reconcileLocked(f *Frame) error {
	have := make(map[string]struct{}, len(f.KVs))
	for i := range f.KVs {
		have[string(f.KVs[i].Key)] = struct{}{}
	}
	local, err := exportRange(r.db, f.Shard, f.Prefix, f.Depth)
	if err != nil {
		return fmt.Errorf("repl: reconciling range: %w", err)
	}
	for i := range local {
		if _, ok := have[string(local[i].Key)]; ok {
			continue
		}
		if _, err := r.s.Delete(local[i].Key); err != nil {
			return fmt.Errorf("repl: reconciling range: %w", err)
		}
	}
	for _, kv := range f.KVs {
		if err := r.s.Insert(kv.Key, kv.Val); err != nil {
			return fmt.Errorf("repl: applying segment range: %w", err)
		}
	}
	return nil
}

// persistCursorLocked durably advances the applied-seq cursor on
// shard 0 after an apply completed. Under eADR the cursor is exact;
// under ADR a crash can roll back applies the cursor covers, which
// Rejoin detects via the device's lost-line count and converts into a
// reseed condition.
func (r *Replica) persistCursorLocked(seq uint64) {
	if seq <= r.applied {
		return
	}
	ix := r.db.Indexes()[0]
	c := ix.Pool().NewCtx()
	ix.SetAppliedSeq(c, seq)
	c.Release()
	r.applied = seq
}

// Serve answers a peer's range fetch with the authoritative live
// contents of the (Shard, Prefix, Depth) range, exported segment by
// seal-verified segment. The replica should be quiescent for the walk
// (read-repair runs inside a repair window).
func (r *Replica) Serve(req FetchReq) ([]KV, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if req.Shard < 0 || req.Shard >= r.db.Shards() {
		return nil, &spash.ReplicationError{Op: "fetch", Shard: req.Shard,
			Epoch: r.db.Epoch(), Err: fmt.Errorf("no such shard (have %d)", r.db.Shards())}
	}
	kvs, err := exportRange(r.db, req.Shard, req.Prefix, req.Depth)
	if err != nil {
		return nil, &spash.ReplicationError{Op: "fetch", Shard: req.Shard,
			Epoch: r.db.Epoch(), Err: err}
	}
	r.db.Indexes()[req.Shard].Obs().Inc(obs.CReplFetches)
	return kvs, nil
}

// Promote turns the replica into the primary: refuse if any shipped
// frame is still unapplied (promoting over lag would drop writes the
// old primary acknowledged) or the image awaits a re-seed, then
// durably advance the epoch on every shard and drop the write fence
// (spash.DB.Promote). Returns the new epoch. After promotion, Apply
// rejects everything — the deposed primary's frames by the epoch
// fence.
func (r *Replica) Promote() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.buf) + len(r.window); n > 0 {
		return 0, &spash.ReplicationError{Op: "promote", Shard: -1,
			Epoch: r.db.Epoch(),
			Err:   fmt.Errorf("%d frames unapplied: %w", n, spash.ErrReplicaLag)}
	}
	if r.needsReseed {
		return 0, &spash.ReplicationError{Op: "promote", Shard: -1,
			Epoch: r.db.Epoch(),
			Err: fmt.Errorf("image awaits re-seed (applied cursor %d rolled back): %w",
				r.applied, spash.ErrNeedsReseed)}
	}
	return r.db.Promote()
}

// Rejoin simulates the replica node itself power-cycling: the applier
// session closes, every device takes a crash, and the replica reopens
// through spash.RecoverAll — the same recovery path a standalone
// database uses, which is the point: because apply only ever goes
// through ordinary operation paths, a replica image is always
// recoverable. The stream cursor is re-derived from the durable
// applied cursor on the recovered image; buffered (acknowledged but
// unapplied) frames are gone, and the primary's cursor handshake
// replays or re-seeds them — no caller bookkeeping. Under eADR
// nothing applied is lost; under ADR the crash may roll back applies
// the cursor already covers, in which case the replica marks itself
// reseed-pending and Rejoin returns a typed ErrNeedsReseed (the
// replica stays wired: the primary's next ship auto-resyncs).
func (r *Replica) Rejoin(opts spash.Options) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.Close()
	r.db.Close()
	platforms := r.db.Platforms()
	lost := r.db.Crash()
	opts.Replica = true
	db, err := spash.RecoverAll(platforms, opts)
	if err != nil {
		return fmt.Errorf("repl: rejoining: %w", err)
	}
	r.db = db
	r.s = db.ApplierSession()
	r.paused = false
	r.buf = nil
	r.window = map[uint64]*Frame{}
	r.applied = db.Indexes()[0].AppliedSeq()
	r.next = r.applied
	r.fresh = true
	r.setLagGauges()
	if lost > 0 {
		// Unflushed lines rolled back: the image may no longer hold
		// applies the cursor vouches for. Only a re-seed re-anchors.
		r.needsReseed = true
		return &spash.ReplicationError{Op: "rejoin", Shard: -1, Epoch: db.Epoch(),
			Err: fmt.Errorf("%d unflushed line(s) rolled back under applied cursor %d: %w",
				lost, r.applied, spash.ErrNeedsReseed)}
	}
	r.needsReseed = false
	return nil
}

// boundShard clamps a frame's shard into the db's range for metric
// attribution (a malformed frame must not panic the registry lookup;
// the payload path validates separately).
func boundShard(db *spash.DB, sh int) int {
	if sh < 0 || sh >= db.Shards() {
		return 0
	}
	return sh
}

// exportRange collects one shard's live pairs in the (prefix, depth)
// hash range through the seal-verified export walk.
func exportRange(db *spash.DB, sh int, prefix uint64, depth uint) ([]KV, error) {
	ix := db.Indexes()[sh]
	c := ix.Pool().NewCtx()
	defer c.Release()
	var out []KV
	err := ix.ExportRange(c, prefix, depth, func(k, v []byte) error {
		out = append(out, KV{
			Key: append([]byte(nil), k...),
			Val: append([]byte(nil), v...),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
