package repl_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"spash"
	"spash/internal/core"
	"spash/internal/pmem"
	"spash/internal/repl"
)

func testOpts(n int) spash.Options {
	return spash.Options{
		Shards: n,
		Platform: pmem.Config{
			PoolSize:  uint64(n) * (4 << 20),
			CacheSize: 64 << 10,
			Mode:      pmem.EADR,
		},
		Index: core.Config{InitialDepth: 1, Concurrency: core.ModeHTM},
	}
}

// pair opens a primary and a replica wired over the in-process
// transport with default hardening options.
func pair(t *testing.T, n int) (*repl.Primary, *repl.Replica) {
	t.Helper()
	return pairWith(t, n, repl.PrimaryOptions{}, repl.ReplicaOptions{})
}

// pairWith is pair with explicit hardening options on both ends.
func pairWith(t *testing.T, n int, popts repl.PrimaryOptions, ropts repl.ReplicaOptions) (*repl.Primary, *repl.Replica) {
	t.Helper()
	pdb, err := spash.Open(testOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	dopts := testOpts(n)
	dopts.Replica = true
	rdb, err := spash.Open(dopts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repl.NewReplicaWith(rdb, ropts)
	if err != nil {
		t.Fatal(err)
	}
	prim, err := repl.NewPrimaryWith(pdb, &repl.InProc{R: rep}, popts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		prim.Close()
		rep.Close()
		pdb.Close()
		rep.DB().Close()
	})
	return prim, rep
}

func key64(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func TestShipApplyMirrors(t *testing.T) {
	prim, rep := pair(t, 2)
	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := prim.Insert(key64(i), key64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i += 2 {
		found, err := prim.Update(key64(i), key64(i*5))
		if err != nil || !found {
			t.Fatalf("update %d: %v %v", i, found, err)
		}
	}
	for i := uint64(0); i < n; i += 5 {
		found, err := prim.Delete(key64(i))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	// Misses are not shipped and must not disturb the stream.
	if found, err := prim.Update(key64(n+1), key64(1)); err != nil || found {
		t.Fatalf("update miss: %v %v", found, err)
	}
	if found, err := prim.Delete(key64(n + 2)); err != nil || found {
		t.Fatalf("delete miss: %v %v", found, err)
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("lag = %d after synchronous shipping", lag)
	}

	rs := rep.DB().Session()
	defer rs.Close()
	for i := uint64(0); i < n; i++ {
		want, present := key64(i*3), true
		if i%2 == 0 {
			want = key64(i * 5)
		}
		if i%5 == 0 {
			present = false
		}
		got, found, err := rs.Get(key64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if found != present || (found && string(got) != string(want)) {
			t.Fatalf("key %d: found=%v got=%q want present=%v %q", i, found, got, present, want)
		}
	}
	if pl, rl := prim.DB().Len(), rep.DB().Len(); pl != rl {
		t.Fatalf("primary holds %d keys, replica %d", pl, rl)
	}
}

func TestReplicaWriteFence(t *testing.T) {
	_, rep := pair(t, 2)
	s := rep.DB().Session()
	defer s.Close()

	err := s.Insert(key64(1), key64(2))
	if !errors.Is(err, spash.ErrNotPrimary) {
		t.Fatalf("replica Insert: %v, want ErrNotPrimary", err)
	}
	var re *spash.ReplicationError
	if !errors.As(err, &re) || re.Op != "insert" || re.Epoch != 1 {
		t.Fatalf("replica Insert error detail: %+v", re)
	}
	if _, err := s.Update(key64(1), key64(2)); !errors.Is(err, spash.ErrNotPrimary) {
		t.Fatalf("replica Update: %v", err)
	}
	if _, err := s.Delete(key64(1)); !errors.Is(err, spash.ErrNotPrimary) {
		t.Fatalf("replica Delete: %v", err)
	}
	if s.TryMerge(key64(1)) {
		t.Fatal("replica TryMerge reported success")
	}

	// Batches: writes fail typed positionally, reads still execute.
	if err := rep.Apply(&repl.Frame{Kind: repl.FrameRecord, Epoch: 1, Seq: 1,
		Shard: int(spash.ShardOf(key64(7), 2)), Op: repl.RecInsert,
		Key: key64(7), Val: key64(70)}); err != nil {
		t.Fatal(err)
	}
	ops := []spash.Op{
		{Kind: spash.OpInsert, Key: key64(8), Value: key64(80)},
		{Kind: spash.OpGet, Key: key64(7)},
		{Kind: spash.OpDelete, Key: key64(7)},
	}
	s.ExecBatch(ops)
	if !errors.Is(ops[0].Err, spash.ErrNotPrimary) || !errors.Is(ops[2].Err, spash.ErrNotPrimary) {
		t.Fatalf("batch writes: %v / %v", ops[0].Err, ops[2].Err)
	}
	if ops[1].Err != nil || !ops[1].Found || string(ops[1].Result) != string(key64(70)) {
		t.Fatalf("batch read on replica: %+v", ops[1])
	}
}

func TestEpochFencingAfterPromote(t *testing.T) {
	prim, rep := pair(t, 2)
	for i := uint64(0); i < 100; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	epoch, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || rep.DB().Epoch() != 2 || rep.DB().IsReplica() {
		t.Fatalf("promote: epoch=%d IsReplica=%v", epoch, rep.DB().IsReplica())
	}
	// The deposed primary keeps shipping at its stale epoch: fenced.
	err = prim.Insert(key64(200), key64(200))
	if !errors.Is(err, spash.ErrNotPrimary) {
		t.Fatalf("deposed ship: %v, want ErrNotPrimary", err)
	}
	// The survivor takes client writes now.
	s := rep.DB().Session()
	defer s.Close()
	if err := s.Insert(key64(300), key64(300)); err != nil {
		t.Fatal(err)
	}
	// Promoting the survivor again is an error (already primary).
	if _, err := rep.DB().Promote(); err == nil {
		t.Fatal("second promote succeeded")
	}
}

func TestPromoteRefusesLag(t *testing.T) {
	prim, rep := pair(t, 2)
	rep.Pause()
	for i := uint64(0); i < 50; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if lag := rep.Lag(); lag != 50 {
		t.Fatalf("lag = %d, want 50", lag)
	}
	if _, err := rep.Promote(); !errors.Is(err, spash.ErrReplicaLag) {
		t.Fatalf("promote over lag: %v, want ErrReplicaLag", err)
	}
	if err := rep.Resume(); err != nil {
		t.Fatal(err)
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("lag after resume = %d", lag)
	}
	if _, err := rep.Promote(); err != nil {
		t.Fatalf("promote after drain: %v", err)
	}
	if got := rep.DB().Len(); got != 50 {
		t.Fatalf("survivor holds %d keys, want 50", got)
	}
}

func mkRecord(seq uint64, i uint64) *repl.Frame {
	return &repl.Frame{Kind: repl.FrameRecord, Epoch: 1, Seq: seq,
		Shard: int(spash.ShardOf(key64(i), 2)), Op: repl.RecInsert,
		Key: key64(i), Val: key64(i)}
}

func TestSequenceGapBuffersInReorderWindow(t *testing.T) {
	_, rep := pair(t, 2)
	if err := rep.Apply(mkRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Ahead of the cursor: buffered, acked, not applied yet.
	if err := rep.Apply(mkRecord(3, 3)); err != nil {
		t.Fatalf("ahead-of-cursor frame: %v, want buffered ack", err)
	}
	if lag := rep.Lag(); lag != 1 {
		t.Fatalf("lag with one buffered frame = %d, want 1", lag)
	}
	if _, found, _ := rep.DB().Session().Get(key64(3), nil); found {
		t.Fatal("buffered frame applied before its gap filled")
	}
	// The gap frame arrives: both it and the buffered one apply.
	if err := rep.Apply(mkRecord(2, 2)); err != nil {
		t.Fatalf("gap-filling frame: %v", err)
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("lag after gap filled = %d, want 0", lag)
	}
	for i := uint64(1); i <= 3; i++ {
		if _, found, err := rep.DB().Session().Get(key64(i), nil); err != nil || !found {
			t.Fatalf("key %d after window drain: found=%v err=%v", i, found, err)
		}
	}
	if got := rep.AppliedSeq(); got != 3 {
		t.Fatalf("applied cursor = %d, want 3", got)
	}
}

func TestSequenceGapDetected(t *testing.T) {
	// With the reorder window disabled the replica is strict: a gap is
	// refused typed, and the missing frame still applies cleanly.
	_, rep := pairWith(t, 2, repl.PrimaryOptions{},
		repl.ReplicaOptions{ReorderWindow: -1})
	if err := rep.Apply(mkRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	err := rep.Apply(mkRecord(3, 3)) // skipped seq 2
	if !errors.Is(err, spash.ErrReplicaLag) {
		t.Fatalf("gap: %v, want ErrReplicaLag", err)
	}
	if err := rep.Apply(mkRecord(2, 2)); err != nil {
		t.Fatalf("in-order frame after gap report: %v", err)
	}
}

func TestFullSyncSeedsReplica(t *testing.T) {
	prim, rep := pair(t, 2)
	// Populate locally without shipping (the state that exists before a
	// replica is attached).
	s := prim.Session()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := s.Insert(key64(i), key64(i*7)); err != nil {
			t.Fatal(err)
		}
	}
	shipped, err := prim.FullSync()
	if err != nil {
		t.Fatal(err)
	}
	if shipped != n {
		t.Fatalf("FullSync shipped %d pairs, want %d", shipped, n)
	}
	if got := rep.DB().Len(); got != n {
		t.Fatalf("replica holds %d keys, want %d", got, n)
	}
	rs := rep.DB().Session()
	defer rs.Close()
	for i := uint64(0); i < n; i += 97 {
		v, ok, err := rs.Get(key64(i), nil)
		if err != nil || !ok || string(v) != string(key64(i*7)) {
			t.Fatalf("key %d: %q %v %v", i, v, ok, err)
		}
	}
	// Steady-state shipping continues after the sync.
	if err := prim.Insert(key64(n), key64(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := rs.Get(key64(n), nil); !ok {
		t.Fatal("record shipped after FullSync missing on replica")
	}
}

func TestServeBoundsAndFetch(t *testing.T) {
	prim, rep := pair(t, 2)
	for i := uint64(0); i < 100; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rep.Serve(repl.FetchReq{Shard: 9}); err == nil {
		t.Fatal("fetch of nonexistent shard succeeded")
	}
	kvs, err := rep.Serve(repl.FetchReq{Shard: 0, Prefix: 0, Depth: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := uint64(0); i < 100; i++ {
		if spash.ShardOf(key64(i), 2) == 0 {
			want++
		}
	}
	if len(kvs) != want {
		t.Fatalf("fetched %d pairs from shard 0, want %d", len(kvs), want)
	}
}

func TestRejoinResumesApplying(t *testing.T) {
	prim, rep := pair(t, 2)
	for i := uint64(0); i < 200; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The replica node power-cycles; under eADR nothing is lost and it
	// recovers in place through the standalone recovery path.
	if err := rep.Rejoin(testOpts(2)); err != nil {
		t.Fatal(err)
	}
	if !rep.DB().IsReplica() {
		t.Fatal("rejoined replica lost its role")
	}
	if got := rep.DB().Len(); got != 200 {
		t.Fatalf("rejoined replica holds %d keys, want 200", got)
	}
	// Note: a real rejoin would resync the sequence cursor from the
	// primary; the in-process stream just continues.
	for i := uint64(200); i < 250; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := rep.DB().Len(); got != 250 {
		t.Fatalf("replica holds %d keys after rejoin stream, want 250", got)
	}
}

func TestReadRepairRestoresQuarantineLosses(t *testing.T) {
	// A poisoned segment on the primary: local fsck -repair quarantines
	// it and reports lost keys; replica-backed read-repair restores
	// them from the peer.
	opts := testOpts(2)
	opts.Index.Checksums = true
	pdb, err := spash.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ropts := opts
	ropts.Replica = true
	rdb, err := spash.Open(ropts)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	rep, err := repl.NewReplica(rdb)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	prim, err := repl.NewPrimary(pdb, &repl.InProc{R: rep})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if err := prim.Insert(key64(i), key64(i*3)); err != nil {
			t.Fatal(err)
		}
	}

	// Poison a few segment lines on the primary's shard 0 and crash it.
	s := prim.Session()
	frames := pdb.Indexes()[0].SegmentAddrs(s.ShardCtx(0))
	if len(frames) == 0 {
		t.Fatal("no segments to poison")
	}
	mp := &pmem.MediaFaultPlan{Seed: 42, PoisonLines: 2, Frames: frames}
	platforms := pdb.Platforms()
	platforms[0].ArmMediaFault(mp)
	pdb.Crash()
	platforms[0].DisarmMediaFault()

	pdb2, err := spash.RecoverAll(platforms, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pdb2.Close()
	s2 := pdb2.Session()
	defer s2.Close()
	frep, err := s2.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	lost := frep.LostKeys()
	if len(frep.Repairs) == 0 || len(lost) == 0 {
		t.Skipf("poison landed on no live keys (repairs=%d lost=%d)", len(frep.Repairs), len(lost))
	}

	prim2, err := repl.NewPrimary(pdb2, &repl.InProc{R: rep})
	if err != nil {
		t.Fatal(err)
	}
	defer prim2.Close()
	rr, err := prim2.ReadRepair(frep)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Ranges != len(frep.Repairs) {
		t.Fatalf("fetched %d ranges, want %d", rr.Ranges, len(frep.Repairs))
	}
	if rr.Restored == 0 {
		t.Fatalf("read-repair restored nothing (report: %+v, %d lost keys)", rr, len(lost))
	}
	// Every key the local repair reported lost is back, with its value.
	for _, k := range lost {
		v, ok, err := prim2.Get([]byte(k), nil)
		if err != nil || !ok {
			t.Fatalf("lost key %x still missing after read-repair: %v %v", k, ok, err)
		}
		i := binary.LittleEndian.Uint64([]byte(k))
		if string(v) != string(key64(i*3)) {
			t.Fatalf("lost key %d restored with wrong value %x", i, v)
		}
	}
	// Idempotent: a second pass restores nothing.
	rr2, err := prim2.ReadRepair(frep)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Restored != 0 {
		t.Fatalf("second read-repair pass restored %d keys", rr2.Restored)
	}
	if err := checkAll(prim2, n); err != nil {
		t.Fatal(err)
	}
}

// checkAll verifies every key of the sequential workload is present
// with its written value.
func checkAll(p *repl.Primary, n uint64) error {
	for i := uint64(0); i < n; i++ {
		v, ok, err := p.Get(key64(i), nil)
		if err != nil {
			return fmt.Errorf("key %d: %w", i, err)
		}
		if !ok || string(v) != string(key64(i*3)) {
			return fmt.Errorf("key %d: found=%v val=%x", i, ok, v)
		}
	}
	return nil
}
