// Auto-resync: the cursor handshake (Transport.Hello) tells the
// primary the replica's durable applied cursor and whether its image
// rolled back (ADR rejoin). Gaps the bounded replay log still covers
// are re-shipped frame by frame; anything past the replayable horizon
// — or a reseed-pending image — gets an automated seal-verified
// FullSync re-seed. No operator step in either path.
package repl

import (
	"fmt"

	"spash"
	"spash/internal/obs"
)

// logDeliveredLocked records a delivered frame for cursor-handshake
// replay. Segment-range frames are logged as nil markers (they are
// rebuilt from the live image, not replayed), which still lets the
// contiguity check see the hole they occupy in the stream. The log is
// trimmed to the configured horizon. Caller holds p.mu.
func (p *Primary) logDeliveredLocked(seq uint64, f *Frame) {
	if seq > p.delivered {
		p.delivered = seq
	}
	if p.opts.ReplayLog <= 0 {
		return
	}
	p.replay = append(p.replay, replayEntry{seq: seq, f: f})
	if excess := len(p.replay) - p.opts.ReplayLog; excess > 0 {
		p.replay = append([]replayEntry(nil), p.replay[excess:]...)
	}
}

// replayableLocked returns the record frames that bridge the replica
// from applied (exclusive) to the primary's delivered cursor, or nil
// if the log cannot bridge it: the cursor predates the log's horizon,
// an entry in the span is a non-replayable marker (segment range), or
// the stream has a hole (a shed frame never entered the log). Caller
// holds p.mu.
func (p *Primary) replayableLocked(applied uint64) []*Frame {
	if applied >= p.delivered {
		return []*Frame{}
	}
	var out []*Frame
	want := applied + 1
	for i := range p.replay {
		e := &p.replay[i]
		if e.seq <= applied {
			continue
		}
		if e.seq != want || e.f == nil {
			return nil
		}
		out = append(out, e.f)
		want++
	}
	if want != p.delivered+1 {
		return nil // log starts past the cursor, or ends short of it
	}
	return out
}

// Resync runs one cursor handshake and whatever repair it calls for
// (replay or re-seed). Shipping does this automatically — on cursor
// refusals and when a drain finishes — but a caller can force a pass,
// e.g. right after wiring a primary to a rejoined replica.
func (p *Primary) Resync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.deposed {
		return &spash.ReplicationError{Op: "resync", Shard: -1,
			Epoch: p.db.Epoch(), Err: spash.ErrNotPrimary}
	}
	return p.resyncLocked()
}

// resyncLocked converges the replica's cursor with the handshake:
// replay the record frames the log still holds, or re-seed the whole
// image when it cannot anchor (rollback) or the gap is past the
// replayable horizon. Caller holds p.mu.
func (p *Primary) resyncLocked() error {
	h, err := p.t.Hello()
	if err != nil {
		return fmt.Errorf("repl: hello: %w", err)
	}
	if h.Epoch > p.db.Epoch() {
		return &spash.ReplicationError{Op: "resync", Shard: -1,
			Epoch: p.db.Epoch(),
			Err: fmt.Errorf("peer at epoch %d: %w", h.Epoch,
				spash.ErrNotPrimary)}
	}
	reg := p.db.Indexes()[0].Obs()
	reg.Inc(obs.CReplResyncs)
	// A shed frame's payload exists only in the local image — no log
	// entry, no queue slot — so the delivered cursor cannot be trusted
	// until a re-seed rebuilds the replica from that image.
	if !h.NeedsReseed && !p.shedGap {
		if h.AppliedSeq >= p.delivered {
			return nil // caught up (or ahead of anything we delivered)
		}
		if frames := p.replayableLocked(h.AppliedSeq); frames != nil {
			for _, f := range frames {
				if err := p.shipRetryLocked(f); err != nil {
					return fmt.Errorf("repl: replaying frame %d: %w", f.Seq, err)
				}
				reg.Inc(obs.CReplReplays)
			}
			return nil
		}
	}
	// Re-seed: rollback, shed gap, or a cursor past the replayable
	// horizon.
	reg.Inc(obs.CReplReseeds)
	if _, err := p.syncLocked("reseed"); err != nil {
		return err
	}
	p.shedGap = false
	return nil
}
