// Per-frame delivery hardening: a deadline on every Ship attempt and
// bounded retries with exponential backoff and jitter around it.
// Shipping is at-least-once by construction — a timed-out attempt may
// still have been delivered, and the retry then lands a duplicate the
// replica's idempotent apply absorbs.
package repl

import (
	"errors"
	"fmt"
	"time"

	"spash"
	"spash/internal/obs"
)

// RetryPolicy bounds one frame's delivery attempts.
type RetryPolicy struct {
	// MaxAttempts caps the Ship calls per frame (first try included).
	// Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it (Multiplier) up to MaxDelay. The actual sleep
	// is jittered in [delay/2, 3*delay/2) so a fleet of retriers does
	// not synchronise. Defaults 200µs base, 20ms cap, multiplier 2.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Deadline bounds one Ship attempt's wall-clock time; an attempt
	// past it fails with spash.ErrTransportTimeout (the attempt's
	// goroutine is abandoned — a late ack becomes a duplicate).
	// Default 1s; negative disables the deadline.
	Deadline time.Duration
	// JitterSeed seeds the backoff jitter (deterministic tests).
	// Default 1.
	JitterSeed int64
	// Sleep is the backoff sleep, injectable for tests. Default
	// time.Sleep.
	Sleep func(time.Duration)
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 4
	}
	if rp.BaseDelay <= 0 {
		rp.BaseDelay = 200 * time.Microsecond
	}
	if rp.MaxDelay <= 0 {
		rp.MaxDelay = 20 * time.Millisecond
	}
	if rp.Multiplier < 1 {
		rp.Multiplier = 2
	}
	if rp.Deadline == 0 {
		rp.Deadline = time.Second
	}
	if rp.JitterSeed == 0 {
		rp.JitterSeed = 1
	}
	if rp.Sleep == nil {
		rp.Sleep = time.Sleep
	}
	return rp
}

// shipOnceLocked runs one Ship attempt under the per-frame deadline.
// The attempt runs in its own goroutine so a hung transport cannot
// wedge the primary: past the deadline the attempt is abandoned (its
// eventual result is discarded; an eventual delivery surfaces as a
// duplicate on the replica) and the attempt fails with a typed
// ErrTransportTimeout. Caller holds p.mu.
func (p *Primary) shipOnceLocked(f *Frame) error {
	d := p.opts.Retry.Deadline
	if d <= 0 {
		return p.t.Ship(f)
	}
	done := make(chan error, 1)
	go func() { done <- p.t.Ship(f) }()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return &spash.ReplicationError{Op: "ship", Shard: f.Shard,
			Epoch: f.Epoch,
			Err: fmt.Errorf("frame %d missed %v deadline: %w",
				f.Seq, d, spash.ErrTransportTimeout)}
	}
}

// isAny reports whether err matches any of the sentinels.
func isAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}

// retryableShip reports whether a Ship error is worth retrying.
// Typed protocol refusals are not transport noise: fencing
// (ErrNotPrimary) is permanent, and cursor refusals (ErrReplicaLag,
// ErrNeedsReseed) need a resync, not a resend of the same frame.
func retryableShip(err error) bool {
	return !errors.Is(err, spash.ErrNotPrimary) &&
		!errors.Is(err, spash.ErrReplicaLag) &&
		!errors.Is(err, spash.ErrNeedsReseed)
}

// shipRetryLocked delivers one frame through the retry policy:
// bounded attempts with exponential backoff and jitter between them.
// Non-retryable errors surface immediately; exhaustion returns a
// typed ErrRetryExhausted that also wraps the last attempt's error.
// On success the frame is recorded as delivered. Caller holds p.mu —
// the backoff sleeps with the lock held by design (the primary is
// single-worker for writes, and an in-flight frame must finish or
// fail before the next one ships to preserve stream order).
func (p *Primary) shipRetryLocked(f *Frame) error {
	rp := p.opts.Retry
	var last error
	delay := rp.BaseDelay
	for attempt := 1; ; attempt++ {
		err := p.shipOnceLocked(f)
		if err == nil {
			if f.Seq > p.delivered {
				p.delivered = f.Seq
			}
			return nil
		}
		last = err
		if !retryableShip(err) {
			return err
		}
		if attempt >= rp.MaxAttempts {
			return fmt.Errorf("after %d attempt(s): %w; last: %w",
				attempt, spash.ErrRetryExhausted, last)
		}
		p.db.Indexes()[boundShard(p.db, f.Shard)].Obs().Inc(obs.CReplRetries)
		rp.Sleep(p.jitter(delay))
		delay = time.Duration(float64(delay) * rp.Multiplier)
		if delay > rp.MaxDelay {
			delay = rp.MaxDelay
		}
	}
}

// jitter spreads d into [d/2, 3d/2) with the primary's seeded rng.
// Caller holds p.mu (the rng is not goroutine-safe).
func (p *Primary) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(p.rng.Int63n(int64(d)))
}
