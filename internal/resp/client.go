// Client-side RESP: a pipelined connection used by spash-cli -connect,
// spash-ycsb -net, and the replication wire transport.
package resp

import (
	"fmt"
	"net"
	"time"
)

// Client is a pipelined RESP client over one TCP connection. Queue
// commands with Cmd/CmdString, push them with Flush, collect replies
// in order with Next. Do is the one-shot convenience. Not safe for
// concurrent use.
type Client struct {
	conn    net.Conn
	rd      *Reader
	wr      *Writer
	pending int
}

// Dial connects to a RESP server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("resp: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Latency matters more than segment coalescing for a pipelined
		// request/reply protocol.
		_ = tc.SetNoDelay(true)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, rd: NewReader(conn), wr: NewWriter(conn)}
}

// Cmd queues one command without flushing.
func (c *Client) Cmd(args ...[]byte) {
	c.wr.Command(args...)
	c.pending++
}

// CmdString queues one command from string arguments without flushing.
func (c *Client) CmdString(args ...string) {
	c.wr.CommandString(args...)
	c.pending++
}

// Pending reports queued commands whose replies have not been read.
func (c *Client) Pending() int { return c.pending }

// Flush pushes all queued commands to the server.
func (c *Client) Flush() error { return c.wr.Flush() }

// Next reads the next in-order reply. The reply's byte slices alias
// the client's read buffer and stay valid until Release.
func (c *Client) Next() (Reply, error) {
	if c.pending == 0 {
		return Reply{}, fmt.Errorf("resp: Next with no pending commands")
	}
	rep, err := c.rd.ReadReply()
	if err != nil {
		return Reply{}, err
	}
	c.pending--
	return rep, nil
}

// Release invalidates all replies returned since the previous Release.
func (c *Client) Release() { c.rd.Release() }

// Do flushes queued commands plus args and returns the final reply,
// draining (and discarding) any earlier pending replies. The reply is
// valid until the next call that touches the reader.
func (c *Client) Do(args ...string) (Reply, error) {
	c.CmdString(args...)
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	var rep Reply
	for c.pending > 0 {
		var err error
		rep, err = c.Next()
		if err != nil {
			return Reply{}, err
		}
	}
	return rep, nil
}

// SetDeadline bounds all subsequent reads and writes.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
