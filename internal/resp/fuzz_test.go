package resp

import (
	"bytes"
	"testing"
)

// FuzzReadCommand feeds arbitrary bytes through the command parser.
// The invariant is "no panic, no hang, no garbage": every outcome is a
// parsed command, a typed protocol error, or EOF — and parsing the
// same input in one-byte chunks must agree with parsing it whole.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	f.Add([]byte("PING\r\nGET k\r\n"))
	f.Add([]byte("*1\r\n$-1\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$100\r\nshort\r\n"))
	f.Add([]byte("*0\r\n\r\n*abc\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte{'*', 0xff, '\r', '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		whole := collect(data, len(data)+1)
		byOne := collect(data, 1)
		if len(whole) != len(byOne) {
			t.Fatalf("chunking changed command count: %d vs %d", len(whole), len(byOne))
		}
		for i := range whole {
			if len(whole[i]) != len(byOne[i]) {
				t.Fatalf("cmd %d: arity %d vs %d", i, len(whole[i]), len(byOne[i]))
			}
			for j := range whole[i] {
				if !bytes.Equal(whole[i][j], byOne[i][j]) {
					t.Fatalf("cmd %d arg %d: %q vs %q", i, j, whole[i][j], byOne[i][j])
				}
			}
		}
	})
}

// collect parses data (delivered chunk bytes at a time) to exhaustion,
// copying out each command. It stops at the first error.
func collect(data []byte, chunk int) [][][]byte {
	rd := NewReaderSize(&chunkReader{data: append([]byte(nil), data...), n: chunk}, 512)
	var out [][][]byte
	for {
		args, err := rd.ReadCommand()
		if err != nil {
			return out
		}
		cp := make([][]byte, len(args))
		for i, a := range args {
			cp[i] = append([]byte(nil), a...)
		}
		out = append(out, cp)
		rd.Release()
	}
}

// FuzzReadReply does the same for the reply parser (client side).
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("+OK\r\n:1\r\n$2\r\nhi\r\n*2\r\n:1\r\n:2\r\n"))
	f.Add([]byte("$-1\r\n*-1\r\n-ERR x\r\n"))
	f.Add([]byte("*2\r\n*1\r\n:5\r\n+a\r\n"))
	f.Add([]byte{'*', '9', '\r', '\n', ':'})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		rd := NewReaderSize(bytes.NewReader(data), 512)
		for i := 0; i < 1<<12; i++ {
			if _, err := rd.ReadReply(); err != nil {
				return
			}
			rd.Release()
		}
	})
}
