// Package resp implements the subset of the RESP2 wire protocol the
// spash-serve front end speaks: a zero-copy request reader (inline and
// multibulk commands), a reply writer, and a reply reader for the
// client side (spash-cli -connect, spash-ycsb -net, and the
// replication wire transport all share it).
//
// Zero copy here means the reader hands out argument slices that alias
// its internal buffer: between Release calls no key or value byte is
// copied on the way from the socket into the index's batch path. The
// price is an explicit lifetime — everything a Read*/TryRead* call
// returned is invalidated by the next Release, which the server issues
// once per drained burst, after the batch executed and its replies
// were written.
//
// The parser distinguishes recoverable from fatal protocol errors the
// way Redis does: a syntactically well-framed but semantically wrong
// command (unknown verb, wrong arity) is the command layer's business
// and costs an error reply; a malformed frame (bad type byte inside a
// multibulk, an unparsable length) desynchronises the stream, so the
// connection must close after the error reply — other connections are
// unaffected.
package resp

import (
	"errors"
	"fmt"
	"io"
)

// Protocol limits. A frame that exceeds them is a fatal error: the
// peer is either broken or hostile, and the stream cannot be trusted
// to resynchronise.
const (
	// MaxBulkLen bounds one bulk-string payload (Redis caps protos at
	// 512 MB; the index caps keys and values far lower, so 64 MB keeps
	// a hostile peer from ballooning the buffer while staying far above
	// any legal spash KV).
	MaxBulkLen = 64 << 20
	// MaxArgs bounds the element count of one multibulk command.
	MaxArgs = 1 << 20
	// MaxInlineLen bounds one inline command line.
	MaxInlineLen = 64 << 10
)

// Error is a protocol-level error. Fatal marks a framing desync: the
// reader cannot find the next command boundary and the connection must
// close (after reporting the error). Non-fatal protocol errors are
// reported and the stream keeps going.
type Error struct {
	Msg   string
	Fatal bool
}

func (e *Error) Error() string { return "resp: " + e.Msg }

// IsFatal reports whether err contains a fatal (desynchronising)
// protocol error. I/O errors are always fatal to a connection but are
// not protocol errors; they report false here.
func IsFatal(err error) bool {
	var pe *Error
	return errors.As(err, &pe) && pe.Fatal
}

func fatalf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Fatal: true}
}

// Reader incrementally parses commands (server side) or replies
// (client side) from a stream. Returned byte slices alias the internal
// buffer and stay valid until Release. Not safe for concurrent use.
type Reader struct {
	src io.Reader
	buf []byte
	// consumed < r: bytes whose parsed aliases are still live (freed by
	// Release); buf[r:w] is buffered unparsed input.
	consumed, r, w int

	args    [][]byte // argument-slice arena, reset by Release
	replies []Reply  // reply arena for arrays, reset by Release
	err     error    // sticky I/O error
}

// NewReader returns a Reader over src with the default buffer size.
func NewReader(src io.Reader) *Reader { return NewReaderSize(src, 64<<10) }

// NewReaderSize returns a Reader with an initial buffer of size bytes
// (the buffer grows as needed up to the protocol limits).
func NewReaderSize(src io.Reader, size int) *Reader {
	if size < 512 {
		size = 512
	}
	return &Reader{src: src, buf: make([]byte, size)}
}

// Release invalidates every slice handed out since the previous
// Release and lets the reader reclaim their buffer space. Callers
// release once per processed burst.
func (rd *Reader) Release() {
	rd.consumed = rd.r
	rd.args = rd.args[:0]
	rd.replies = rd.replies[:0]
}

// Buffered reports how many unparsed bytes are already buffered.
func (rd *Reader) Buffered() int { return rd.w - rd.r }

// fill reads more input. It first compacts the buffer if no live
// aliases pin the front, then grows it if full (a single huge frame),
// then performs one blocking Read.
func (rd *Reader) fill() error {
	if rd.err != nil {
		return rd.err
	}
	if rd.consumed > 0 && rd.consumed == rd.r {
		// Everything parsed so far has been released, so no live alias
		// points into the buffer (aliases only ever point into the
		// parsed region buf[consumed:r], which is empty). Slide the
		// unparsed tail to the front. When consumed < r there ARE live
		// aliases and compaction would move bytes out from under them;
		// in that case we grow instead — the buffer is then bounded by
		// the size of one unreleased burst.
		copy(rd.buf, rd.buf[rd.r:rd.w])
		rd.w -= rd.r
		rd.r, rd.consumed = 0, 0
	}
	if rd.w == len(rd.buf) {
		if len(rd.buf) >= MaxBulkLen+MaxInlineLen {
			rd.err = fatalf("frame exceeds %d bytes", MaxBulkLen+MaxInlineLen)
			return rd.err
		}
		nb := make([]byte, len(rd.buf)*2)
		copy(nb, rd.buf[:rd.w])
		rd.buf = nb
	}
	n, err := rd.src.Read(rd.buf[rd.w:])
	rd.w += n
	if err != nil && n == 0 {
		rd.err = err
		return err
	}
	return nil
}

// errIncomplete signals "need more bytes" internally; it never escapes
// the package.
var errIncomplete = errors.New("resp: incomplete")

// ReadCommand returns the next command's arguments, blocking on the
// stream as needed. Empty input lines are skipped. The slices alias
// the internal buffer until Release.
func (rd *Reader) ReadCommand() ([][]byte, error) {
	for {
		args, err := rd.tryCommand()
		if err == nil {
			if args == nil { // empty inline line: skip
				continue
			}
			return args, nil
		}
		if !errors.Is(err, errIncomplete) {
			return nil, err
		}
		if ferr := rd.fill(); ferr != nil {
			return nil, ferr
		}
	}
}

// TryReadCommand parses the next command from bytes already buffered,
// without touching the connection. ok is false when no complete
// command is buffered — the caller's burst is over.
func (rd *Reader) TryReadCommand() (args [][]byte, ok bool, err error) {
	for {
		args, err := rd.tryCommand()
		if err == nil {
			if args == nil {
				continue // empty inline line inside the burst
			}
			return args, true, nil
		}
		if errors.Is(err, errIncomplete) {
			return nil, false, nil
		}
		return nil, false, err
	}
}

// tryCommand parses one command from buf[r:w]. A nil, nil return is a
// skippable empty inline line. errIncomplete means more input is
// needed; the parse position is unchanged.
func (rd *Reader) tryCommand() ([][]byte, error) {
	if rd.r == rd.w {
		return nil, errIncomplete
	}
	if rd.buf[rd.r] == '*' {
		return rd.tryMultibulk()
	}
	return rd.tryInline()
}

// line returns the next CRLF- (or bare LF-) terminated line starting
// at pos, and the offset just past its terminator. The returned slice
// excludes the terminator.
func (rd *Reader) line(pos int) ([]byte, int, error) {
	for i := pos; i < rd.w; i++ {
		if rd.buf[i] == '\n' {
			end := i
			if end > pos && rd.buf[end-1] == '\r' {
				end--
			}
			return rd.buf[pos:end], i + 1, nil
		}
	}
	if rd.w-pos > MaxInlineLen {
		return nil, 0, fatalf("line exceeds %d bytes", MaxInlineLen)
	}
	return nil, 0, errIncomplete
}

// parseInt parses a decimal integer with optional leading '-'.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i++
		if i == len(b) {
			return 0, false
		}
	}
	var n int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > (1<<62)/10 {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// tryInline parses one inline command: a line of whitespace-separated
// words. Returns nil args for an empty line.
func (rd *Reader) tryInline() ([][]byte, error) {
	ln, next, err := rd.line(rd.r)
	if err != nil {
		return nil, err
	}
	rd.r = next
	start := len(rd.args)
	i := 0
	for i < len(ln) {
		for i < len(ln) && (ln[i] == ' ' || ln[i] == '\t') {
			i++
		}
		if i == len(ln) {
			break
		}
		j := i
		for j < len(ln) && ln[j] != ' ' && ln[j] != '\t' {
			j++
		}
		rd.args = append(rd.args, ln[i:j])
		i = j
	}
	if len(rd.args) == start {
		return nil, nil // empty line
	}
	return rd.args[start:], nil
}

// tryMultibulk parses one "*N\r\n($len\r\n<bytes>\r\n)×N" command.
// Any framing violation is fatal.
func (rd *Reader) tryMultibulk() ([][]byte, error) {
	pos := rd.r
	hdr, next, err := rd.line(pos + 1)
	if err != nil {
		return nil, err
	}
	n, ok := parseInt(hdr)
	if !ok || n < 0 || n > MaxArgs {
		return nil, fatalf("invalid multibulk length %q", hdr)
	}
	pos = next
	start := len(rd.args)
	for k := int64(0); k < n; k++ {
		if pos == rd.w {
			rd.args = rd.args[:start]
			return nil, errIncomplete
		}
		if rd.buf[pos] != '$' {
			rd.args = rd.args[:start]
			return nil, fatalf("expected '$', got %q", rd.buf[pos])
		}
		hdr, next, err := rd.line(pos + 1)
		if err != nil {
			rd.args = rd.args[:start]
			return nil, err
		}
		blen, ok := parseInt(hdr)
		if !ok || blen < 0 || blen > MaxBulkLen {
			rd.args = rd.args[:start]
			return nil, fatalf("invalid bulk length %q", hdr)
		}
		if int64(rd.w-next) < blen+2 {
			rd.args = rd.args[:start]
			return nil, errIncomplete
		}
		body := rd.buf[next : next+int(blen)]
		tail := rd.buf[next+int(blen) : next+int(blen)+2]
		if tail[0] != '\r' || tail[1] != '\n' {
			rd.args = rd.args[:start]
			return nil, fatalf("bulk string missing CRLF terminator")
		}
		rd.args = append(rd.args, body)
		pos = next + int(blen) + 2
	}
	rd.r = pos
	if n == 0 {
		return nil, nil // "*0\r\n": no command, skip
	}
	return rd.args[start:], nil
}

// --- replies (client side) ------------------------------------------

// ReplyKind discriminates RESP reply types.
type ReplyKind byte

const (
	SimpleString ReplyKind = '+'
	ErrorReply   ReplyKind = '-'
	Integer      ReplyKind = ':'
	BulkString   ReplyKind = '$'
	Array        ReplyKind = '*'
)

// Reply is one parsed RESP reply. Str aliases the reader's buffer
// (valid until Release); Null marks a null bulk string or null array.
type Reply struct {
	Kind ReplyKind
	Str  []byte
	Int  int64
	Arr  []Reply
	Null bool
}

// IsError reports whether the reply is an error reply.
func (r Reply) IsError() bool { return r.Kind == ErrorReply }

// Err returns the reply's error text as an error (nil for non-errors).
func (r Reply) Err() error {
	if r.Kind != ErrorReply {
		return nil
	}
	return fmt.Errorf("resp: server error: %s", r.Str)
}

// ReadReply parses one reply, blocking as needed. Slices alias the
// internal buffer until Release.
func (rd *Reader) ReadReply() (Reply, error) {
	for {
		rep, err := rd.tryReply()
		if err == nil {
			return rep, nil
		}
		if !errors.Is(err, errIncomplete) {
			return Reply{}, err
		}
		if ferr := rd.fill(); ferr != nil {
			return Reply{}, ferr
		}
	}
}

func (rd *Reader) tryReply() (Reply, error) {
	save := rd.r
	rep, err := rd.tryReplyAt()
	if err != nil {
		rd.r = save
		return Reply{}, err
	}
	return rep, nil
}

func (rd *Reader) tryReplyAt() (Reply, error) {
	if rd.r == rd.w {
		return Reply{}, errIncomplete
	}
	t := rd.buf[rd.r]
	switch ReplyKind(t) {
	case SimpleString, ErrorReply:
		ln, next, err := rd.line(rd.r + 1)
		if err != nil {
			return Reply{}, err
		}
		rd.r = next
		return Reply{Kind: ReplyKind(t), Str: ln}, nil
	case Integer:
		ln, next, err := rd.line(rd.r + 1)
		if err != nil {
			return Reply{}, err
		}
		n, ok := parseInt(ln)
		if !ok {
			return Reply{}, fatalf("invalid integer reply %q", ln)
		}
		rd.r = next
		return Reply{Kind: Integer, Int: n}, nil
	case BulkString:
		hdr, next, err := rd.line(rd.r + 1)
		if err != nil {
			return Reply{}, err
		}
		blen, ok := parseInt(hdr)
		if !ok || blen > MaxBulkLen {
			return Reply{}, fatalf("invalid bulk length %q", hdr)
		}
		if blen < 0 {
			rd.r = next
			return Reply{Kind: BulkString, Null: true}, nil
		}
		if int64(rd.w-next) < blen+2 {
			return Reply{}, errIncomplete
		}
		body := rd.buf[next : next+int(blen)]
		rd.r = next + int(blen) + 2
		return Reply{Kind: BulkString, Str: body}, nil
	case Array:
		hdr, next, err := rd.line(rd.r + 1)
		if err != nil {
			return Reply{}, err
		}
		n, ok := parseInt(hdr)
		if !ok || n > MaxArgs {
			return Reply{}, fatalf("invalid array length %q", hdr)
		}
		rd.r = next
		if n < 0 {
			return Reply{Kind: Array, Null: true}, nil
		}
		start := len(rd.replies)
		for k := int64(0); k < n; k++ {
			el, err := rd.tryReplyAt()
			if err != nil {
				rd.replies = rd.replies[:start]
				return Reply{}, err
			}
			rd.replies = append(rd.replies, el)
		}
		return Reply{Kind: Array, Arr: rd.replies[start:]}, nil
	default:
		return Reply{}, fatalf("unexpected reply type byte %q", t)
	}
}

// --- writer ---------------------------------------------------------

// Writer buffers RESP frames toward a stream. Not safe for concurrent
// use. Errors are sticky and surfaced by Flush.
type Writer struct {
	dst io.Writer
	buf []byte
	err error
}

// NewWriter returns a Writer over dst.
func NewWriter(dst io.Writer) *Writer {
	return &Writer{dst: dst, buf: make([]byte, 0, 16<<10)}
}

// Flush writes the buffered frames to the stream.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.dst.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		w.err = err
	}
	return err
}

// Buffered reports the bytes queued but not yet flushed.
func (w *Writer) Buffered() int { return len(w.buf) }

func (w *Writer) appendInt(n int64) {
	var tmp [20]byte
	i := len(tmp)
	neg := n < 0
	if neg {
		n = -n
	}
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	if neg {
		i--
		tmp[i] = '-'
	}
	w.buf = append(w.buf, tmp[i:]...)
}

func (w *Writer) crlf() { w.buf = append(w.buf, '\r', '\n') }

// SimpleString writes "+s\r\n".
func (w *Writer) SimpleString(s string) {
	w.buf = append(w.buf, '+')
	w.buf = append(w.buf, s...)
	w.crlf()
}

// Error writes "-s\r\n". CR/LF inside s are replaced so a hostile
// message cannot smuggle a frame boundary.
func (w *Writer) Error(s string) {
	w.buf = append(w.buf, '-')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\r' || c == '\n' {
			c = ' '
		}
		w.buf = append(w.buf, c)
	}
	w.crlf()
}

// Int writes ":n\r\n".
func (w *Writer) Int(n int64) {
	w.buf = append(w.buf, ':')
	w.appendInt(n)
	w.crlf()
}

// Bulk writes "$len\r\n<b>\r\n".
func (w *Writer) Bulk(b []byte) {
	w.buf = append(w.buf, '$')
	w.appendInt(int64(len(b)))
	w.crlf()
	w.buf = append(w.buf, b...)
	w.crlf()
}

// BulkString writes a bulk string from a string.
func (w *Writer) BulkString(s string) {
	w.buf = append(w.buf, '$')
	w.appendInt(int64(len(s)))
	w.crlf()
	w.buf = append(w.buf, s...)
	w.crlf()
}

// NullBulk writes the RESP2 null bulk string "$-1\r\n".
func (w *Writer) NullBulk() { w.buf = append(w.buf, '$', '-', '1', '\r', '\n') }

// Array writes an array header for n following elements.
func (w *Writer) Array(n int) {
	w.buf = append(w.buf, '*')
	w.appendInt(int64(n))
	w.crlf()
}

// Command writes a full command as a multibulk array of the arguments.
func (w *Writer) Command(args ...[]byte) {
	w.Array(len(args))
	for _, a := range args {
		w.Bulk(a)
	}
}

// CommandString writes a full command from string arguments.
func (w *Writer) CommandString(args ...string) {
	w.Array(len(args))
	for _, a := range args {
		w.BulkString(a)
	}
}
