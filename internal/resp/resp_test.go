package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// chunkReader delivers its payload n bytes at a time to exercise the
// incremental-parse paths (errIncomplete → fill → resume).
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func argsToStrings(args [][]byte) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = string(a)
	}
	return out
}

func TestReadCommandConformance(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		want  [][]string // commands in order
		fatal bool       // expect a fatal protocol error after want
		errAt string     // substring of the expected error
	}{
		{
			name: "multibulk basic",
			in:   "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n",
			want: [][]string{{"SET", "k", "v"}},
		},
		{
			name: "multibulk empty values",
			in:   "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$0\r\n\r\n",
			want: [][]string{{"SET", "k", ""}},
		},
		{
			name: "multibulk binary value",
			in:   "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$4\r\n\r\n\x00\xff\r\n",
			want: [][]string{{"SET", "k", "\r\n\x00\xff"}},
		},
		{
			name: "inline basic",
			in:   "PING\r\n",
			want: [][]string{{"PING"}},
		},
		{
			name: "inline multiple words and tabs",
			in:   "SET  k\tv\r\n",
			want: [][]string{{"SET", "k", "v"}},
		},
		{
			name: "inline bare LF",
			in:   "PING\n",
			want: [][]string{{"PING"}},
		},
		{
			name: "empty inline lines skipped",
			in:   "\r\n\r\nPING\r\n",
			want: [][]string{{"PING"}},
		},
		{
			name: "zero-length multibulk skipped",
			in:   "*0\r\nPING\r\n",
			want: [][]string{{"PING"}},
		},
		{
			name: "pipelined mixed",
			in:   "PING\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\nECHO hi\r\n",
			want: [][]string{{"PING"}, {"GET", "k"}, {"ECHO", "hi"}},
		},
		{
			name:  "bad multibulk count",
			in:    "*abc\r\n",
			fatal: true,
			errAt: "invalid multibulk length",
		},
		{
			name:  "negative multibulk count",
			in:    "*-5\r\n",
			fatal: true,
			errAt: "invalid multibulk length",
		},
		{
			name:  "non-dollar element",
			in:    "*1\r\n:5\r\n",
			fatal: true,
			errAt: "expected '$'",
		},
		{
			name:  "bad bulk length",
			in:    "*1\r\n$x\r\n",
			fatal: true,
			errAt: "invalid bulk length",
		},
		{
			name:  "negative bulk length in command",
			in:    "*1\r\n$-1\r\n",
			fatal: true,
			errAt: "invalid bulk length",
		},
		{
			name:  "bulk missing CRLF",
			in:    "*1\r\n$2\r\nabXY",
			fatal: true,
			errAt: "missing CRLF",
		},
		{
			name:  "good then bad frame",
			in:    "PING\r\n*1\r\n$boom\r\n",
			want:  [][]string{{"PING"}},
			fatal: true,
			errAt: "invalid bulk length",
		},
	}
	for _, tc := range cases {
		for _, chunk := range []int{1 << 20, 1, 3} {
			t.Run(tc.name, func(t *testing.T) {
				rd := NewReaderSize(&chunkReader{data: []byte(tc.in), n: chunk}, 512)
				for i, want := range tc.want {
					args, err := rd.ReadCommand()
					if err != nil {
						t.Fatalf("cmd %d: unexpected error: %v", i, err)
					}
					got := argsToStrings(args)
					if strings.Join(got, "\x00") != strings.Join(want, "\x00") {
						t.Fatalf("cmd %d: got %q want %q", i, got, want)
					}
					rd.Release()
				}
				_, err := rd.ReadCommand()
				if tc.fatal {
					if !IsFatal(err) {
						t.Fatalf("expected fatal protocol error, got %v", err)
					}
					if tc.errAt != "" && !strings.Contains(err.Error(), tc.errAt) {
						t.Fatalf("error %q does not contain %q", err, tc.errAt)
					}
				} else if !errors.Is(err, io.EOF) {
					t.Fatalf("expected EOF, got %v", err)
				}
			})
		}
	}
}

func TestTryReadCommandDoesNotTouchSource(t *testing.T) {
	// TryReadCommand must only parse already-buffered bytes: a source
	// that panics on Read proves no fill happens.
	rd := NewReader(panicReader{})
	// Pre-seed the buffer by hand.
	seed := []byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n*1\r\n$4\r\nPI") // second command incomplete
	copy(rd.buf, seed)
	rd.w = len(seed)

	args, ok, err := rd.TryReadCommand()
	if err != nil || !ok {
		t.Fatalf("first TryReadCommand: ok=%v err=%v", ok, err)
	}
	if got := argsToStrings(args); got[0] != "GET" || got[1] != "k" {
		t.Fatalf("got %q", got)
	}
	_, ok, err = rd.TryReadCommand()
	if err != nil {
		t.Fatalf("second TryReadCommand err: %v", err)
	}
	if ok {
		t.Fatal("second TryReadCommand reported a complete command from a partial frame")
	}
}

type panicReader struct{}

func (panicReader) Read([]byte) (int, error) { panic("TryReadCommand read from source") }

func TestZeroCopyAliasing(t *testing.T) {
	payload := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"
	rd := NewReader(bytes.NewReader([]byte(payload)))
	args, err := rd.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	// The value slice must point into the reader's buffer (zero copy).
	val := args[2]
	inBuf := false
	for i := range rd.buf {
		if &rd.buf[i] == &val[0] {
			inBuf = true
			break
		}
	}
	if !inBuf {
		t.Fatal("argument does not alias the reader buffer")
	}
}

func TestAliasesSurviveFillWithoutRelease(t *testing.T) {
	// Reading a second command before releasing the first must not
	// move the first command's bytes, even when the read forces fills
	// (and would otherwise compact or grow the buffer).
	payload := "*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$5\r\nfirst\r\n" +
		"*3\r\n$3\r\nSET\r\n$2\r\nk2\r\n$600\r\n" + strings.Repeat("z", 600) + "\r\n"
	rd := NewReaderSize(&chunkReader{data: []byte(payload), n: 5}, 512)
	first, err := rd.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	k1, v1 := first[1], first[2]
	second, err := rd.ReadCommand() // forces fills + growth, no Release yet
	if err != nil {
		t.Fatal(err)
	}
	if string(k1) != "k1" || string(v1) != "first" {
		t.Fatalf("first command corrupted by later fill: key=%q val=%q", k1, v1)
	}
	if string(second[1]) != "k2" || len(second[2]) != 600 {
		t.Fatalf("second command wrong: %q len=%d", second[1], len(second[2]))
	}
}

func TestReleaseCompaction(t *testing.T) {
	// Feed many commands through a small buffer; Release must reclaim
	// space so the buffer does not grow without bound.
	var stream bytes.Buffer
	for i := 0; i < 1000; i++ {
		stream.WriteString("*3\r\n$3\r\nSET\r\n$4\r\nkey1\r\n$8\r\nvalue999\r\n")
	}
	rd := NewReaderSize(&stream, 512)
	for i := 0; i < 1000; i++ {
		if _, err := rd.ReadCommand(); err != nil {
			t.Fatalf("cmd %d: %v", i, err)
		}
		rd.Release()
	}
	if len(rd.buf) > 4096 {
		t.Fatalf("buffer grew to %d despite Release", len(rd.buf))
	}
}

func TestLargeBulkGrowsBuffer(t *testing.T) {
	big := bytes.Repeat([]byte{'x'}, 200<<10) // larger than the 64 KiB initial buffer
	var stream bytes.Buffer
	wr := NewWriter(&stream)
	wr.Command([]byte("SET"), []byte("k"), big)
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&stream)
	args, err := rd.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(args[2], big) {
		t.Fatal("large bulk payload mismatch")
	}
}

func TestOversizeBulkIsFatal(t *testing.T) {
	rd := NewReader(strings.NewReader("*1\r\n$999999999999\r\n"))
	_, err := rd.ReadCommand()
	if !IsFatal(err) {
		t.Fatalf("expected fatal error for oversize bulk, got %v", err)
	}
}

func TestWriterReplies(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SimpleString("OK")
	w.Error("ERR boom\r\nwith newline")
	w.Int(-42)
	w.Bulk([]byte("hello"))
	w.NullBulk()
	w.Array(2)
	w.BulkString("a")
	w.BulkString("b")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR boom  with newline\r\n:-42\r\n$5\r\nhello\r\n$-1\r\n*2\r\n$1\r\na\r\n$1\r\nb\r\n"
	if buf.String() != want {
		t.Fatalf("got %q want %q", buf.String(), want)
	}
}

func TestReadReply(t *testing.T) {
	in := "+OK\r\n-ERR boom\r\n:123\r\n$5\r\nhello\r\n$-1\r\n*3\r\n:1\r\n$1\r\nx\r\n*-1\r\n*0\r\n"
	for _, chunk := range []int{1 << 20, 1, 7} {
		rd := NewReader(&chunkReader{data: []byte(in), n: chunk})
		r, err := rd.ReadReply()
		if err != nil || r.Kind != SimpleString || string(r.Str) != "OK" {
			t.Fatalf("simple: %+v %v", r, err)
		}
		r, err = rd.ReadReply()
		if err != nil || !r.IsError() || r.Err() == nil || string(r.Str) != "ERR boom" {
			t.Fatalf("error: %+v %v", r, err)
		}
		r, err = rd.ReadReply()
		if err != nil || r.Kind != Integer || r.Int != 123 {
			t.Fatalf("int: %+v %v", r, err)
		}
		r, err = rd.ReadReply()
		if err != nil || r.Kind != BulkString || string(r.Str) != "hello" {
			t.Fatalf("bulk: %+v %v", r, err)
		}
		r, err = rd.ReadReply()
		if err != nil || !r.Null {
			t.Fatalf("null bulk: %+v %v", r, err)
		}
		r, err = rd.ReadReply()
		if err != nil || r.Kind != Array || len(r.Arr) != 3 {
			t.Fatalf("array: %+v %v", r, err)
		}
		if r.Arr[0].Int != 1 || string(r.Arr[1].Str) != "x" || !r.Arr[2].Null {
			t.Fatalf("array elements: %+v", r.Arr)
		}
		r, err = rd.ReadReply()
		if err != nil || r.Kind != Array || len(r.Arr) != 0 || r.Null {
			t.Fatalf("empty array: %+v %v", r, err)
		}
		rd.Release()
	}
}

func TestReadReplyBadType(t *testing.T) {
	rd := NewReader(strings.NewReader("?what\r\n"))
	_, err := rd.ReadReply()
	if !IsFatal(err) {
		t.Fatalf("expected fatal, got %v", err)
	}
}

func TestClientPipeline(t *testing.T) {
	// Round-trip a pipelined burst through an in-memory "connection".
	var wire bytes.Buffer
	srvW := NewWriter(&wire)
	srvW.SimpleString("OK")
	srvW.Bulk([]byte("v1"))
	srvW.Int(1)
	if err := srvW.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&wire)
	for i, want := range []ReplyKind{SimpleString, BulkString, Integer} {
		r, err := rd.ReadReply()
		if err != nil || r.Kind != want {
			t.Fatalf("reply %d: %+v %v", i, r, err)
		}
	}
}

func TestParseInt(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true}, {"123", 123, true}, {"-7", -7, true},
		{"", 0, false}, {"-", 0, false}, {"1a", 0, false},
		{"99999999999999999999", 0, false},
	}
	for _, c := range cases {
		got, ok := parseInt([]byte(c.in))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseInt(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}
