package server

import (
	"errors"
	"fmt"
	"time"

	"net"

	"spash"
	"spash/internal/obs"
	"spash/internal/resp"
)

// planKind says how to render one reply at flush time. KV plans
// consume ops from the batch (in order); literal plans carry their
// reply inline.
type planKind uint8

const (
	planSet      planKind = iota // 1 op: +OK or -ERR
	planGet                      // 1 op: bulk / null / -ERR
	planCount                    // n ops: :<found-count> (DEL, EXISTS)
	planSimple                   // literal simple string
	planErrLit                   // literal error
	planInt                      // literal integer
	planBulk                     // literal bulk (bytes alias the read buffer)
	planEmptyArr                 // literal empty array
)

type plan struct {
	kind planKind
	n    int    // ops consumed (planSet/planGet/planCount)
	num  int64  // planInt
	lit  string // planSimple/planErrLit
	bs   []byte // planBulk; valid until Release
}

// connState is the per-connection machinery: reader, writer, session,
// and the reusable batch (ops + reply plans + result buffers).
type connState struct {
	srv  *Server
	conn net.Conn
	rd   *resp.Reader
	wr   *resp.Writer
	sess *spash.Session
	lane *obs.Lane

	ops     []spash.Op
	plans   []plan
	resbufs [][]byte
	verb    [32]byte // upper-cased command verb scratch
	quit    bool
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.removeConn(conn)
	c := &connState{
		srv:  s,
		conn: conn,
		rd:   resp.NewReader(conn),
		wr:   resp.NewWriter(conn),
		sess: s.db.Session(),
		lane: s.reg.Lane(),
	}
	defer c.sess.Close()

	for {
		if s.draining.Load() {
			_ = c.wr.Flush()
			return
		}
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			// Re-check after arming the deadline: if Close armed its
			// wake-up deadline between our draining check and our
			// SetReadDeadline, ours overwrote it — this check is what
			// keeps the connection from sleeping through the drain.
			if s.draining.Load() {
				_ = c.wr.Flush()
				return
			}
		}
		args, err := c.rd.ReadCommand()
		if err != nil {
			// A fatal protocol error gets an explanation before the
			// close; I/O errors (EOF, reset, drain wake-up) do not.
			if resp.IsFatal(err) {
				c.lane.Inc(obs.CServeErrors)
				c.wr.Error("ERR Protocol error: " + err.Error())
			}
			_ = c.wr.Flush()
			return
		}
		// Drain the burst: every command already buffered joins this
		// batch; the socket is not read again until replies are out.
		for {
			c.dispatch(args)
			if len(c.ops) >= c.srv.cfg.maxBatch() {
				c.flush() // backpressure: window full, reply before parsing more
			}
			if c.quit {
				break
			}
			var ok bool
			args, ok, err = c.rd.TryReadCommand()
			if err != nil {
				// Malformed frame mid-burst: reply to everything that
				// parsed cleanly, then report and close this
				// connection only.
				c.flush()
				c.lane.Inc(obs.CServeErrors)
				c.wr.Error("ERR Protocol error: " + err.Error())
				_ = c.wr.Flush()
				return
			}
			if !ok {
				break
			}
		}
		c.flush()
		if err := c.wr.Flush(); err != nil {
			return
		}
		c.rd.Release()
		if c.quit {
			return
		}
	}
}

// flush executes the accumulated batch through the session's
// shard-splitting pipeline and writes every pending reply in arrival
// order. Replies land in the writer's buffer; the caller flushes the
// writer at burst end (or sooner on window pressure).
func (c *connState) flush() {
	if len(c.plans) == 0 {
		return
	}
	if len(c.ops) > 0 {
		c.srv.reg.AddGauge(obs.GServeInflight, int64(len(c.ops)))
		c.sess.ExecBatch(c.ops)
		c.lane.Inc(obs.CServeBatches)
		c.lane.Observe(obs.HServeBatch, len(c.ops))
	}
	opi := 0
	for i := range c.plans {
		p := &c.plans[i]
		switch p.kind {
		case planSet:
			op := &c.ops[opi]
			opi++
			if op.Err != nil {
				c.writeOpError(op.Err)
			} else {
				c.wr.SimpleString("OK")
			}
		case planGet:
			op := &c.ops[opi]
			opi++
			switch {
			case op.Err != nil:
				c.writeOpError(op.Err)
			case op.Found:
				c.wr.Bulk(op.Result)
			default:
				c.wr.NullBulk()
			}
		case planCount:
			var found int64
			var err error
			for k := 0; k < p.n; k++ {
				op := &c.ops[opi]
				opi++
				if op.Err != nil && err == nil {
					err = op.Err
				}
				if op.Found {
					found++
				}
			}
			if err != nil {
				c.writeOpError(err)
			} else {
				c.wr.Int(found)
			}
		case planSimple:
			c.wr.SimpleString(p.lit)
		case planErrLit:
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error(p.lit)
		case planInt:
			c.wr.Int(p.num)
		case planBulk:
			c.wr.Bulk(p.bs)
		case planEmptyArr:
			c.wr.Array(0)
		}
	}
	if len(c.ops) > 0 {
		c.srv.reg.AddGauge(obs.GServeInflight, -int64(len(c.ops)))
	}
	c.ops = c.ops[:0]
	c.plans = c.plans[:0]
}

// writeOpError renders an engine error as a RESP error reply.
func (c *connState) writeOpError(err error) {
	c.lane.Inc(obs.CServeErrors)
	switch {
	case errors.Is(err, spash.ErrNotPrimary):
		c.wr.Error("READONLY You can't write against a read only replica.")
	case errors.Is(err, spash.ErrClosed):
		c.wr.Error("ERR server is shutting down")
	default:
		c.wr.Error("ERR " + err.Error())
	}
}

// queueOp appends one KV op to the batch, wiring a reused result
// buffer for reads.
func (c *connState) queueOp(kind spash.OpKind, key, val []byte) {
	i := len(c.ops)
	for len(c.resbufs) <= i {
		c.resbufs = append(c.resbufs, make([]byte, 0, 256))
	}
	var rb []byte
	if kind == spash.OpGet {
		rb = c.resbufs[i][:0]
	}
	//spash:aliased -- the batch executes and its replies flush before the reader's Release; ops is truncated each burst
	c.ops = append(c.ops, spash.Op{Kind: kind, Key: key, Value: val, ResultBuf: rb})
}

func (c *connState) errf(format string, args ...any) {
	c.plans = append(c.plans, plan{kind: planErrLit, lit: fmt.Sprintf(format, args...)})
}

// upperVerb upper-cases args[0] into the scratch buffer; a verb longer
// than the scratch cannot match any known command and keeps its tail.
func (c *connState) upperVerb(v []byte) []byte {
	n := len(v)
	if n > len(c.verb) {
		n = len(c.verb)
	}
	for i := 0; i < n; i++ {
		ch := v[i]
		if 'a' <= ch && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		c.verb[i] = ch
	}
	return c.verb[:n]
}

// dispatch turns one parsed command into batch ops + a reply plan (or
// handles it inline for the replication verbs).
func (c *connState) dispatch(args [][]byte) {
	c.lane.Inc(obs.CServeCmds)
	// The string conversion inside the switch expression is
	// recognised by the compiler and does not allocate.
	switch string(c.upperVerb(args[0])) {
	case "GET":
		c.lane.Inc(obs.CServeCmdGet)
		if len(args) != 2 {
			c.errf("ERR wrong number of arguments for 'get' command")
			return
		}
		c.queueOp(spash.OpGet, args[1], nil)
		c.plans = append(c.plans, plan{kind: planGet, n: 1})
	case "SET":
		c.lane.Inc(obs.CServeCmdSet)
		if len(args) != 3 {
			c.errf("ERR wrong number of arguments for 'set' command (options are not supported)")
			return
		}
		c.queueOp(spash.OpInsert, args[1], args[2])
		c.plans = append(c.plans, plan{kind: planSet, n: 1})
	case "DEL":
		c.lane.Inc(obs.CServeCmdDel)
		if len(args) < 2 {
			c.errf("ERR wrong number of arguments for 'del' command")
			return
		}
		for _, k := range args[1:] {
			c.queueOp(spash.OpDelete, k, nil)
		}
		c.plans = append(c.plans, plan{kind: planCount, n: len(args) - 1})
	case "EXISTS":
		c.lane.Inc(obs.CServeCmdOther)
		if len(args) < 2 {
			c.errf("ERR wrong number of arguments for 'exists' command")
			return
		}
		for _, k := range args[1:] {
			c.queueOp(spash.OpGet, k, nil)
		}
		c.plans = append(c.plans, plan{kind: planCount, n: len(args) - 1})
	case "PING":
		c.lane.Inc(obs.CServeCmdOther)
		if len(args) > 1 {
			//spash:aliased -- the plan is rendered and flushed before the reader's Release; plans is truncated each burst
			c.plans = append(c.plans, plan{kind: planBulk, bs: args[1]})
		} else {
			c.plans = append(c.plans, plan{kind: planSimple, lit: "PONG"})
		}
	case "ECHO":
		c.lane.Inc(obs.CServeCmdOther)
		if len(args) != 2 {
			c.errf("ERR wrong number of arguments for 'echo' command")
			return
		}
		//spash:aliased -- the plan is rendered and flushed before the reader's Release; plans is truncated each burst
		c.plans = append(c.plans, plan{kind: planBulk, bs: args[1]})
	case "DBSIZE":
		c.lane.Inc(obs.CServeCmdOther)
		c.plans = append(c.plans, plan{kind: planInt, num: int64(c.srv.db.Len())})
	case "INFO":
		c.lane.Inc(obs.CServeCmdOther)
		c.plans = append(c.plans, plan{kind: planBulk, bs: []byte(c.srv.info())})
	case "COMMAND", "CONFIG":
		// redis-cli sends COMMAND DOCS on connect and CONFIG GET for
		// completion hints; an empty array keeps it happy.
		c.lane.Inc(obs.CServeCmdOther)
		c.plans = append(c.plans, plan{kind: planEmptyArr})
	case "HELLO":
		// RESP3 negotiation: refuse like a RESP2-only server so
		// redis-cli falls back cleanly.
		c.lane.Inc(obs.CServeCmdOther)
		c.errf("NOPROTO unsupported protocol version")
	case "SELECT", "CLIENT":
		c.lane.Inc(obs.CServeCmdOther)
		c.plans = append(c.plans, plan{kind: planSimple, lit: "OK"})
	case "QUIT":
		c.lane.Inc(obs.CServeCmdOther)
		c.plans = append(c.plans, plan{kind: planSimple, lit: "OK"})
		c.quit = true
	case "REPL.SHIP":
		// Replication verbs run inline: first execute-and-reply the
		// pending batch so effects and replies stay in arrival order,
		// then apply against the attached replica.
		c.lane.Inc(obs.CServeCmdOther)
		c.flush()
		c.handleRepl(replShip, args)
	case "REPL.FETCH":
		c.lane.Inc(obs.CServeCmdOther)
		c.flush()
		c.handleRepl(replFetch, args)
	case "REPL.HELLO":
		c.lane.Inc(obs.CServeCmdOther)
		c.flush()
		c.handleRepl(replHello, args)
	default:
		c.lane.Inc(obs.CServeCmdOther)
		c.errf("ERR unknown command '%s'", args[0])
	}
}

// info renders a minimal INFO payload from the live snapshot.
func (s *Server) info() string {
	role := "master"
	if s.db.IsReplica() {
		role = "slave"
	}
	return fmt.Sprintf(
		"# Server\r\nserver:spash-serve\r\n\r\n# Replication\r\nrole:%s\r\nepoch:%d\r\n\r\n# Keyspace\r\nkeys:%d\r\nshards:%d\r\nconnections:%d\r\n",
		role, s.db.Epoch(), s.db.Len(), s.db.Shards(),
		s.reg.GaugeValue(obs.GServeConns))
}
