// Package server is spash's wire front end: a RESP2-compatible TCP
// server over the sharded DB, speakable with redis-cli, spash-cli
// -connect, and spash-ycsb -net.
//
// The design goal is to keep the engine's batch pipeline fed. Each
// connection parses commands zero-copy (internal/resp), accumulates
// KV operations into a reusable []spash.Op, and drains each network
// read burst through Session.ExecBatch — one batch per read, replies
// written in arrival order. A bounded per-connection window (MaxBatch)
// is the backpressure: past it the burst is executed and replied
// before more input is parsed, so a fire-hosing client holds at most
// one window of unacknowledged ops, not an unbounded queue.
//
// Close drains gracefully: stop accepting, wake blocked readers, let
// each connection finish (and reply to) the burst it already started,
// then close the sessions. An acknowledged write is on the device
// before its reply is written, so nothing acknowledged is lost.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spash"
	"spash/internal/obs"
	"spash/internal/repl"
)

// Config parameterises a Server.
type Config struct {
	// Addr is the TCP listen address for Start (e.g. "127.0.0.1:6399",
	// ":0" for an ephemeral port).
	Addr string
	// MaxBatch bounds one connection's inflight window: the most ops
	// parsed-but-unreplied at any moment, and so the largest batch
	// handed to ExecBatch. Default 128.
	MaxBatch int
	// IdleTimeout, when positive, closes connections whose next
	// command does not arrive in time. Zero means no limit.
	IdleTimeout time.Duration
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 128
	}
	return c.MaxBatch
}

// Server serves the RESP front end over a DB.
type Server struct {
	db      *spash.DB
	cfg     Config
	reg     *obs.Registry
	replica *repl.Replica // non-nil: REPL.* commands apply here

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup
}

// New returns an unstarted server over db.
func New(db *spash.DB, cfg Config) *Server {
	return &Server{db: db, cfg: cfg, reg: db.Obs(), conns: make(map[net.Conn]struct{})}
}

// AttachReplica exposes db's replica role on the wire: REPL.SHIP,
// REPL.FETCH, and REPL.HELLO apply to r. Call before Start.
func (s *Server) AttachReplica(r *repl.Replica) { s.replica = r }

// Start listens on cfg.Addr and serves in a background goroutine,
// returning the bound address (useful with ":0").
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

// Serve accepts on ln until Close. It owns ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.acceptLoop(ln)
	if s.draining.Load() {
		return nil
	}
	return errors.New("server: accept loop exited")
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Close (or fatal accept error)
		}
		if s.draining.Load() {
			_ = conn.Close()
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.reg.Inc(obs.CServeAccepts)
		s.reg.AddGauge(obs.GServeConns, 1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) removeConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.reg.AddGauge(obs.GServeConns, -1)
	_ = conn.Close()
}

// Close drains the server: stop accepting, wake every blocked reader,
// let in-progress bursts finish and flush their replies, then close
// the connections and return. Idempotent.
func (s *Server) Close() error {
	if !s.draining.CompareAndSwap(false, true) {
		s.wg.Wait()
		return nil
	}
	s.mu.Lock()
	ln := s.ln
	// A connection blocked in a read wakes with a deadline error, sees
	// draining, flushes, and exits. One mid-burst keeps executing — it
	// only re-reads the socket between bursts.
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
	return nil
}
