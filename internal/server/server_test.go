package server_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spash"
	"spash/internal/core"
	"spash/internal/obs"
	"spash/internal/pmem"
	"spash/internal/resp"
	"spash/internal/server"
)

func testOpts(n int) spash.Options {
	return spash.Options{
		Shards: n,
		Platform: pmem.Config{
			PoolSize:  uint64(n) * (8 << 20),
			CacheSize: 64 << 10,
			Mode:      pmem.EADR,
		},
		Index: core.Config{InitialDepth: 1, Concurrency: core.ModeHTM},
	}
}

// startServer opens a DB and serves it on an ephemeral loopback port.
func startServer(t *testing.T, shards int, cfg server.Config) (*spash.DB, *server.Server, string) {
	t.Helper()
	db, err := spash.Open(testOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	srv := server.New(db, cfg)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		db.Close()
	})
	return db, srv, addr
}

func dial(t *testing.T, addr string) *resp.Client {
	t.Helper()
	c, err := resp.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func wantSimple(t *testing.T, c *resp.Client, args []string, want string) {
	t.Helper()
	rep, err := c.Do(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	if rep.Kind != resp.SimpleString || string(rep.Str) != want {
		t.Fatalf("%v: got %+v, want +%s", args, rep, want)
	}
	c.Release()
}

func TestEndToEndCommands(t *testing.T) {
	_, _, addr := startServer(t, 2, server.Config{})
	c := dial(t, addr)

	wantSimple(t, c, []string{"PING"}, "PONG")
	wantSimple(t, c, []string{"SET", "k1", "v1"}, "OK")
	wantSimple(t, c, []string{"set", "k2", "v2"}, "OK") // case-insensitive

	rep, err := c.Do("GET", "k1")
	if err != nil || rep.Kind != resp.BulkString || string(rep.Str) != "v1" {
		t.Fatalf("GET k1 = %+v, %v", rep, err)
	}
	c.Release()

	rep, err = c.Do("GET", "missing")
	if err != nil || !rep.Null {
		t.Fatalf("GET missing = %+v, %v (want null)", rep, err)
	}
	c.Release()

	rep, err = c.Do("EXISTS", "k1", "k2", "missing")
	if err != nil || rep.Kind != resp.Integer || rep.Int != 2 {
		t.Fatalf("EXISTS = %+v, %v (want :2)", rep, err)
	}
	c.Release()

	rep, err = c.Do("DEL", "k1", "missing", "k2")
	if err != nil || rep.Kind != resp.Integer || rep.Int != 2 {
		t.Fatalf("DEL = %+v, %v (want :2)", rep, err)
	}
	c.Release()

	rep, err = c.Do("GET", "k1")
	if err != nil || !rep.Null {
		t.Fatalf("GET deleted k1 = %+v, %v (want null)", rep, err)
	}
	c.Release()

	// SET is an upsert.
	wantSimple(t, c, []string{"SET", "up", "a"}, "OK")
	wantSimple(t, c, []string{"SET", "up", "bb"}, "OK")
	rep, err = c.Do("GET", "up")
	if err != nil || string(rep.Str) != "bb" {
		t.Fatalf("GET after upsert = %+v, %v", rep, err)
	}
	c.Release()

	rep, err = c.Do("DBSIZE")
	if err != nil || rep.Kind != resp.Integer || rep.Int != 1 {
		t.Fatalf("DBSIZE = %+v, %v (want :1)", rep, err)
	}
	c.Release()

	// Binary-safe round trip.
	bin := "\r\n\x00\xff$*-12345"
	wantSimple(t, c, []string{"SET", "bin", bin}, "OK")
	rep, err = c.Do("GET", "bin")
	if err != nil || string(rep.Str) != bin {
		t.Fatalf("binary GET = %q, %v", rep.Str, err)
	}
	c.Release()

	// redis-cli connection dance.
	rep, err = c.Do("COMMAND", "DOCS")
	if err != nil || rep.Kind != resp.Array || len(rep.Arr) != 0 {
		t.Fatalf("COMMAND DOCS = %+v, %v", rep, err)
	}
	c.Release()
	rep, err = c.Do("HELLO", "3")
	if err != nil || !rep.IsError() || !strings.HasPrefix(string(rep.Str), "NOPROTO") {
		t.Fatalf("HELLO 3 = %+v, %v (want -NOPROTO)", rep, err)
	}
	c.Release()
	wantSimple(t, c, []string{"SELECT", "0"}, "OK")

	// Unknown command: error reply, connection stays usable.
	rep, err = c.Do("FROB", "x")
	if err != nil || !rep.IsError() {
		t.Fatalf("FROB = %+v, %v (want error)", rep, err)
	}
	c.Release()
	wantSimple(t, c, []string{"PING"}, "PONG")

	// Wrong arity: error reply, connection stays usable.
	rep, err = c.Do("GET")
	if err != nil || !rep.IsError() {
		t.Fatalf("bare GET = %+v, %v (want error)", rep, err)
	}
	c.Release()
	wantSimple(t, c, []string{"PING"}, "PONG")
}

func TestPipelinedBurstOrder(t *testing.T) {
	db, _, addr := startServer(t, 2, server.Config{MaxBatch: 8})
	c := dial(t, addr)

	// One write+flush carrying many commands: replies must come back
	// in arrival order even though the window (8) forces several
	// batches, and mixed non-KV commands interleave.
	const n = 100
	for i := 0; i < n; i++ {
		c.CmdString("SET", fmt.Sprintf("key%03d", i), fmt.Sprintf("val%03d", i))
		if i%10 == 0 {
			c.CmdString("PING")
		}
	}
	for i := 0; i < n; i++ {
		c.CmdString("GET", fmt.Sprintf("key%03d", i))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rep, err := c.Next()
		if err != nil || string(rep.Str) != "OK" {
			t.Fatalf("SET %d: %+v %v", i, rep, err)
		}
		if i%10 == 0 {
			rep, err = c.Next()
			if err != nil || string(rep.Str) != "PONG" {
				t.Fatalf("PING after SET %d: %+v %v", i, rep, err)
			}
		}
		c.Release()
	}
	for i := 0; i < n; i++ {
		rep, err := c.Next()
		if err != nil || string(rep.Str) != fmt.Sprintf("val%03d", i) {
			t.Fatalf("GET %d: %q %v", i, rep.Str, err)
		}
		c.Release()
	}
	if db.Len() != n {
		t.Fatalf("db holds %d keys, want %d", db.Len(), n)
	}

	// The burst machinery must have recorded multi-op batches.
	snap := db.ObsSnapshot()
	if snap.Counters["serve_batches"] == 0 {
		t.Fatal("no serve_batches recorded")
	}
	if snap.Counters["serve_cmd_set"] != n || snap.Counters["serve_cmd_get"] != n {
		t.Fatalf("per-command counters: %+v", snap.Counters)
	}
}

func TestInlineCommands(t *testing.T) {
	_, _, addr := startServer(t, 1, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("SET ik iv\r\nGET ik\r\nPING\r\n")); err != nil {
		t.Fatal(err)
	}
	rd := resp.NewReader(conn)
	rep, err := rd.ReadReply()
	if err != nil || string(rep.Str) != "OK" {
		t.Fatalf("inline SET: %+v %v", rep, err)
	}
	rep, err = rd.ReadReply()
	if err != nil || string(rep.Str) != "iv" {
		t.Fatalf("inline GET: %+v %v", rep, err)
	}
	rep, err = rd.ReadReply()
	if err != nil || string(rep.Str) != "PONG" {
		t.Fatalf("inline PING: %+v %v", rep, err)
	}
}

func TestMalformedFrameClosesOnlyThatConnection(t *testing.T) {
	_, _, addr := startServer(t, 1, server.Config{})
	healthy := dial(t, addr)
	wantSimple(t, healthy, []string{"SET", "pre", "1"}, "OK")

	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	// A well-framed command followed by a desynchronising frame: the
	// parsed command must still be answered, then the error, then EOF.
	if _, err := bad.Write([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n*1\r\n$oops\r\n")); err != nil {
		t.Fatal(err)
	}
	rd := resp.NewReader(bad)
	rep, err := rd.ReadReply()
	if err != nil || string(rep.Str) != "OK" {
		t.Fatalf("SET before bad frame: %+v %v", rep, err)
	}
	rep, err = rd.ReadReply()
	if err != nil || !rep.IsError() || !strings.Contains(string(rep.Str), "Protocol error") {
		t.Fatalf("protocol error reply: %+v %v", rep, err)
	}
	// Server must close this connection now.
	_ = bad.SetReadDeadline(time.Now().Add(2 * time.Second))
	var one [1]byte
	if _, err := bad.Read(one[:]); err == nil {
		t.Fatal("connection still open after fatal protocol error")
	}

	// The healthy connection is unaffected.
	wantSimple(t, healthy, []string{"PING"}, "PONG")
	rep, err = healthy.Do("GET", "k")
	if err != nil || string(rep.Str) != "v" {
		t.Fatalf("write before the bad frame was lost: %+v %v", rep, err)
	}
	healthy.Release()
}

func TestReplicaModeIsReadOnly(t *testing.T) {
	opts := testOpts(1)
	opts.Replica = true
	db, err := spash.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close(); db.Close() })

	c := dial(t, addr)
	rep, err := c.Do("SET", "k", "v")
	if err != nil || !rep.IsError() || !strings.HasPrefix(string(rep.Str), "READONLY") {
		t.Fatalf("replica SET = %+v, %v (want -READONLY)", rep, err)
	}
	c.Release()
	rep, err = c.Do("GET", "k")
	if err != nil || !rep.Null {
		t.Fatalf("replica GET = %+v, %v (reads must still work)", rep, err)
	}
	c.Release()
}

// TestCloseDrainsAcknowledgedWrites races concurrent writers against
// Close: every SET that was acknowledged with +OK before the
// connection died must be readable afterwards. Run under -race this
// also exercises the drain/handler synchronisation.
func TestCloseDrainsAcknowledgedWrites(t *testing.T) {
	db, srv, addr := startServer(t, 2, server.Config{MaxBatch: 16})

	const workers = 8
	var acked [workers]atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := resp.Dial(addr, 2*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			<-start
			for i := 0; ; i++ {
				// Small pipelined windows, acknowledged in order: the
				// count of +OK replies seen is the durable prefix.
				const win = 4
				for j := 0; j < win; j++ {
					c.CmdString("SET", fmt.Sprintf("w%d-%d", w, i*win+j), "x")
				}
				if err := c.Flush(); err != nil {
					return
				}
				for j := 0; j < win; j++ {
					rep, err := c.Next()
					if err != nil {
						return
					}
					if string(rep.Str) == "OK" {
						acked[w].Add(1)
					}
				}
				c.Release()
			}
		}(w)
	}
	close(start)
	time.Sleep(50 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	sess := db.Session()
	defer sess.Close()
	for w := 0; w < workers; w++ {
		n := acked[w].Load()
		for i := int64(0); i < n; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			_, found, err := sess.Get([]byte(key), nil)
			if err != nil {
				t.Fatalf("get %s: %v", key, err)
			}
			if !found {
				t.Fatalf("acknowledged write %s lost by drain (worker acked %d)", key, n)
			}
		}
	}
	if db.Obs().GaugeValue(obs.GServeConns) != 0 {
		t.Fatalf("serve_conns gauge = %d after drain, want 0",
			db.Obs().GaugeValue(obs.GServeConns))
	}
	if db.Obs().GaugeValue(obs.GServeInflight) != 0 {
		t.Fatalf("serve_inflight gauge = %d after drain, want 0",
			db.Obs().GaugeValue(obs.GServeInflight))
	}

	// New connections are refused after Close.
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

func TestLargeValues(t *testing.T) {
	_, _, addr := startServer(t, 1, server.Config{})
	c := dial(t, addr)
	val := strings.Repeat("v", 32<<10) // within core.MaxKVLen
	wantSimple(t, c, []string{"SET", "big", val}, "OK")
	rep, err := c.Do("GET", "big")
	if err != nil || len(rep.Str) != len(val) {
		t.Fatalf("big GET: len=%d err=%v", len(rep.Str), err)
	}
	c.Release()

	// Oversize values error without wedging the connection.
	huge := strings.Repeat("w", 1<<20)
	rep, err = c.Do("SET", "huge", huge)
	if err != nil || !rep.IsError() {
		t.Fatalf("oversize SET = %+v, %v (want error)", rep, err)
	}
	c.Release()
	wantSimple(t, c, []string{"PING"}, "PONG")
}
