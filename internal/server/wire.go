// Replication over the wire: the server side exposes an attached
// repl.Replica through three RESP verbs (REPL.SHIP, REPL.FETCH,
// REPL.HELLO, payloads gob-encoded in one bulk string), and
// WireTransport is the matching client — a repl.Transport that the
// existing retry/breaker/resync machinery drives unchanged.
//
// Typed protocol refusals cross the wire as structured error replies
// ("REPL <CODE> shard=<n> epoch=<n> <text>") and are reconstructed
// into *spash.ReplicationError wrapping the matching sentinel, so
// errors.Is(err, spash.ErrNotPrimary) and friends hold on the client
// exactly as they do in-process. Everything else (I/O errors, plain
// ERR replies) stays untyped, which the retry policy treats as
// transient — the right default for a wire.
package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"spash"
	"spash/internal/obs"
	"spash/internal/repl"
	"spash/internal/resp"
)

// handleRepl serves one replication verb against the attached replica.
// Replies are written inline (the caller flushed the batch first).
type replVerb uint8

const (
	replShip replVerb = iota
	replFetch
	replHello
)

func (c *connState) handleRepl(v replVerb, args [][]byte) {
	r := c.srv.replica
	if r == nil {
		c.lane.Inc(obs.CServeErrors)
		c.wr.Error("ERR replication is not enabled on this server")
		return
	}
	switch v {
	case replShip:
		if len(args) != 2 {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error("ERR REPL.SHIP takes one frame argument")
			return
		}
		var f repl.Frame
		if err := gob.NewDecoder(bytes.NewReader(args[1])).Decode(&f); err != nil {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error("ERR REPL.SHIP bad frame: " + err.Error())
			return
		}
		if err := r.Apply(&f); err != nil {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error(encodeReplError(err))
			return
		}
		c.wr.SimpleString("OK")
	case replFetch:
		if len(args) != 2 {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error("ERR REPL.FETCH takes one request argument")
			return
		}
		var req repl.FetchReq
		if err := gob.NewDecoder(bytes.NewReader(args[1])).Decode(&req); err != nil {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error("ERR REPL.FETCH bad request: " + err.Error())
			return
		}
		kvs, err := r.Serve(req)
		if err != nil {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error(encodeReplError(err))
			return
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(kvs); err != nil {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error("ERR REPL.FETCH encode: " + err.Error())
			return
		}
		c.wr.Bulk(buf.Bytes())
	case replHello:
		h, err := r.Hello()
		if err != nil {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error(encodeReplError(err))
			return
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(h); err != nil {
			c.lane.Inc(obs.CServeErrors)
			c.wr.Error("ERR REPL.HELLO encode: " + err.Error())
			return
		}
		c.wr.Bulk(buf.Bytes())
	}
}

// encodeReplError renders a typed replication refusal as a structured
// error line the client can reconstruct: "REPL <CODE> shard=<n>
// epoch=<n> <text>".
func encodeReplError(err error) string {
	code := "ERR"
	switch {
	case errors.Is(err, spash.ErrNotPrimary):
		code = "NOTPRIMARY"
	case errors.Is(err, spash.ErrReplicaLag):
		code = "LAG"
	case errors.Is(err, spash.ErrNeedsReseed):
		code = "RESEED"
	case errors.Is(err, spash.ErrTransportTimeout):
		code = "TIMEOUT"
	case errors.Is(err, spash.ErrRetryExhausted):
		code = "EXHAUSTED"
	case errors.Is(err, spash.ErrClosed):
		code = "CLOSED"
	}
	shard, epoch := -1, uint64(0)
	var re *spash.ReplicationError
	if errors.As(err, &re) {
		shard, epoch = re.Shard, re.Epoch
	}
	return fmt.Sprintf("REPL %s shard=%d epoch=%d %v", code, shard, epoch, err)
}

// decodeReplError reverses encodeReplError on the client: a "REPL ..."
// error reply becomes a *spash.ReplicationError wrapping the matching
// sentinel (so errors.Is works across the wire); anything else stays
// an untyped (transient, retryable) error.
func decodeReplError(msg string) error {
	rest, ok := strings.CutPrefix(msg, "REPL ")
	if !ok {
		return fmt.Errorf("server: repl refused: %s", msg)
	}
	fields := strings.SplitN(rest, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("server: repl refused: %s", msg)
	}
	var sentinel error
	switch fields[0] {
	case "NOTPRIMARY":
		sentinel = spash.ErrNotPrimary
	case "LAG":
		sentinel = spash.ErrReplicaLag
	case "RESEED":
		sentinel = spash.ErrNeedsReseed
	case "TIMEOUT":
		sentinel = spash.ErrTransportTimeout
	case "EXHAUSTED":
		sentinel = spash.ErrRetryExhausted
	case "CLOSED":
		sentinel = spash.ErrClosed
	}
	shard := -1
	if v, ok := strings.CutPrefix(fields[1], "shard="); ok {
		if n, err := strconv.Atoi(v); err == nil {
			shard = n
		}
	}
	var epoch uint64
	if v, ok := strings.CutPrefix(fields[2], "epoch="); ok {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			epoch = n
		}
	}
	text := ""
	if len(fields) == 4 {
		text = fields[3]
	}
	if sentinel == nil {
		return fmt.Errorf("server: repl refused: %s", text)
	}
	return &spash.ReplicationError{Op: "wire", Shard: shard, Epoch: epoch,
		Err: fmt.Errorf("%s: %w", text, sentinel)}
}

// WireTransport is a repl.Transport over TCP to a spash-serve peer
// with an attached replica. It keeps one connection, redialing lazily
// after an I/O error — the repl retry policy turns that into
// backoff-and-retry, the breaker into degraded-async, exactly as with
// the in-process transport. Safe for the repl machinery's use (writes
// serialised by the Primary; the background prober synchronises with
// the write path internally), and additionally locked here so a
// misuse cannot interleave frames on the wire.
type WireTransport struct {
	addr    string
	timeout time.Duration

	mu sync.Mutex
	c  *resp.Client
}

// DialTransport returns a WireTransport to addr. timeout bounds the
// dial and each request round trip (default 2s when zero).
func DialTransport(addr string, timeout time.Duration) *WireTransport {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &WireTransport{addr: addr, timeout: timeout}
}

// Close drops the connection (a later call redials).
func (t *WireTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		err := t.c.Close()
		t.c = nil
		return err
	}
	return nil
}

// roundTrip sends one REPL command and returns its reply (copied out
// of the client's buffer). The connection is dropped on any I/O or
// protocol error so the next call starts clean.
func (t *WireTransport) roundTrip(verb string, payload []byte) (resp.Reply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c == nil {
		c, err := resp.Dial(t.addr, t.timeout)
		if err != nil {
			return resp.Reply{}, fmt.Errorf("server: wire transport: %w", err)
		}
		t.c = c
	}
	drop := func(err error) (resp.Reply, error) {
		_ = t.c.Close()
		t.c = nil
		return resp.Reply{}, fmt.Errorf("server: wire transport %s: %w", verb, err)
	}
	if err := t.c.SetDeadline(time.Now().Add(t.timeout)); err != nil {
		return drop(err)
	}
	if payload != nil {
		t.c.Cmd([]byte(verb), payload)
	} else {
		t.c.Cmd([]byte(verb))
	}
	if err := t.c.Flush(); err != nil {
		return drop(err)
	}
	rep, err := t.c.Next()
	if err != nil {
		return drop(err)
	}
	// Copy out of the read buffer before Release.
	out := rep
	out.Str = append([]byte(nil), rep.Str...)
	out.Arr = nil
	t.c.Release()
	return out, nil
}

// Ship implements repl.Transport: synchronous — a nil return means
// the peer applied the frame.
func (t *WireTransport) Ship(f *repl.Frame) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("server: wire transport encode frame: %w", err)
	}
	rep, err := t.roundTrip("REPL.SHIP", buf.Bytes())
	if err != nil {
		return err
	}
	if rep.IsError() {
		return decodeReplError(string(rep.Str))
	}
	return nil
}

// Fetch implements repl.Transport.
func (t *WireTransport) Fetch(req repl.FetchReq) ([]repl.KV, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, fmt.Errorf("server: wire transport encode fetch: %w", err)
	}
	rep, err := t.roundTrip("REPL.FETCH", buf.Bytes())
	if err != nil {
		return nil, err
	}
	if rep.IsError() {
		return nil, decodeReplError(string(rep.Str))
	}
	var kvs []repl.KV
	if err := gob.NewDecoder(bytes.NewReader(rep.Str)).Decode(&kvs); err != nil {
		return nil, fmt.Errorf("server: wire transport decode fetch reply: %w", err)
	}
	return kvs, nil
}

// Hello implements repl.Transport.
func (t *WireTransport) Hello() (repl.Hello, error) {
	rep, err := t.roundTrip("REPL.HELLO", nil)
	if err != nil {
		return repl.Hello{}, err
	}
	if rep.IsError() {
		return repl.Hello{}, decodeReplError(string(rep.Str))
	}
	var h repl.Hello
	if err := gob.NewDecoder(bytes.NewReader(rep.Str)).Decode(&h); err != nil {
		return repl.Hello{}, fmt.Errorf("server: wire transport decode hello: %w", err)
	}
	return h, nil
}
