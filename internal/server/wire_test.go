package server_test

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"spash"
	"spash/internal/repl"
	"spash/internal/server"
)

func noSleep(time.Duration) {}

func key64(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

// wirePair stands up a replica behind a real TCP server and a primary
// shipping to it through mk(WireTransport) — mk wraps the wire with
// fault injection when the test wants chaos.
func wirePair(t *testing.T, shards int, popts repl.PrimaryOptions,
	mk func(repl.Transport) repl.Transport) (*repl.Primary, *repl.Replica) {
	t.Helper()

	ropts := testOpts(shards)
	ropts.Replica = true
	rdb, err := spash.Open(ropts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repl.NewReplica(rdb)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(rdb, server.Config{Addr: "127.0.0.1:0"})
	srv.AttachReplica(rep)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}

	wire := server.DialTransport(addr, 2*time.Second)
	pdb, err := spash.Open(testOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	prim, err := repl.NewPrimaryWith(pdb, mk(wire), popts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		prim.Close()
		_ = wire.Close()
		_ = srv.Close()
		rep.Close()
		pdb.Close()
		rdb.Close()
	})
	return prim, rep
}

func TestWireTransportShipsAndFetches(t *testing.T) {
	prim, rep := wirePair(t, 2, repl.PrimaryOptions{ProbeInterval: -1},
		func(tr repl.Transport) repl.Transport { return tr })

	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := prim.Insert(key64(i), key64(i*7)); err != nil {
			t.Fatalf("insert %d over wire: %v", i, err)
		}
	}
	if _, err := prim.Update(key64(3), key64(99)); err != nil {
		t.Fatalf("update over wire: %v", err)
	}
	if _, err := prim.Delete(key64(4)); err != nil {
		t.Fatalf("delete over wire: %v", err)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		t.Fatalf("replica holds %d keys, primary %d", got, want)
	}
	if got := rep.AppliedSeq(); got != n+2 {
		t.Fatalf("applied cursor = %d, want %d", got, n+2)
	}

	// FullSync exercises REPL.FETCH + segment-range frames end to end.
	if _, err := prim.FullSync(); err != nil {
		t.Fatalf("full sync over wire: %v", err)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		t.Fatalf("after FullSync: replica %d keys, primary %d", got, want)
	}
}

// TestWireTypedErrorsSurviveTheWire promotes the replica mid-stream:
// the deposed primary's next Ship must come back as a typed
// ErrNotPrimary refusal reconstructed from the wire encoding, matched
// with errors.Is exactly like the in-process transport.
func TestWireTypedErrorsSurviveTheWire(t *testing.T) {
	prim, rep := wirePair(t, 1,
		repl.PrimaryOptions{ProbeInterval: -1,
			Retry: repl.RetryPolicy{MaxAttempts: 2, Sleep: noSleep, Deadline: -1}},
		func(tr repl.Transport) repl.Transport { return tr })

	if err := prim.Insert(key64(1), key64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	err := prim.Insert(key64(2), key64(2))
	if err == nil {
		t.Fatal("insert after peer promotion succeeded")
	}
	if !errors.Is(err, spash.ErrNotPrimary) {
		t.Fatalf("want ErrNotPrimary across the wire, got %v", err)
	}
	var re *spash.ReplicationError
	if !errors.As(err, &re) {
		t.Fatalf("want *ReplicationError across the wire, got %T: %v", err, err)
	}
}

// TestWireChaosMatrix is the loopback chaos smoke: the seeded
// FaultyTransport wraps the real TCP wire, injecting drops, delays,
// duplicates, and reorders between the retry machinery and the
// socket. After healing, drain + resync must converge the replica.
func TestWireChaosMatrix(t *testing.T) {
	var ft *repl.FaultyTransport
	prim, rep := wirePair(t, 2,
		repl.PrimaryOptions{ProbeInterval: -1,
			Retry: repl.RetryPolicy{MaxAttempts: 6, Sleep: noSleep, Deadline: -1, JitterSeed: 7}},
		func(tr repl.Transport) repl.Transport {
			ft = repl.NewFaultyTransport(tr, repl.FaultSpec{
				Seed: 23, Drop: 0.15, Delay: 0.1, Dup: 0.1, Reorder: 0.1})
			return ft
		})

	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := prim.Insert(key64(i), key64(i)); err != nil {
			t.Fatalf("insert %d over chaotic wire: %v", i, err)
		}
	}
	ft.Heal()
	for range [50]int{} {
		if _, err := prim.TryDrain(); err == nil {
			break
		}
	}
	if err := prim.Resync(); err != nil {
		t.Fatalf("final resync: %v", err)
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("replica lag after heal = %d, want 0", lag)
	}
	if got, want := rep.DB().Len(), prim.DB().Len(); got != want {
		t.Fatalf("replica holds %d keys, primary %d (faults: %+v)", got, want, ft.Stats())
	}
	st := ft.Stats()
	if st.Drops == 0 && st.Delays == 0 && st.Dups == 0 && st.Reorders == 0 {
		t.Fatalf("fault injection idle: %+v", st)
	}
}

// TestWireReconnect kills the server between writes: the transport
// must fail typed-transient, then recover once a fresh server listens
// (here: a second server on the same replica DB).
func TestWireReconnect(t *testing.T) {
	ropts := testOpts(1)
	ropts.Replica = true
	rdb, err := spash.Open(ropts)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	rep, err := repl.NewReplica(rdb)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	srv1 := server.New(rdb, server.Config{Addr: "127.0.0.1:0"})
	srv1.AttachReplica(rep)
	addr, err := srv1.Start()
	if err != nil {
		t.Fatal(err)
	}

	wire := server.DialTransport(addr, time.Second)
	defer wire.Close()
	if err := wire.Ship(&repl.Frame{Kind: repl.FrameRecord, Epoch: 1, Seq: 1,
		Op: repl.RecInsert, Key: key64(1), Val: key64(1)}); err != nil {
		t.Fatalf("ship via srv1: %v", err)
	}
	_ = srv1.Close()

	// Server gone: the next ship fails untyped (transient to the
	// retry policy).
	err = wire.Ship(&repl.Frame{Kind: repl.FrameRecord, Epoch: 1, Seq: 2,
		Op: repl.RecInsert, Key: key64(2), Val: key64(2)})
	if err == nil {
		t.Fatal("ship to dead server succeeded")
	}
	if errors.Is(err, spash.ErrNotPrimary) || errors.Is(err, spash.ErrReplicaLag) {
		t.Fatalf("dead-server error must be untyped-transient, got %v", err)
	}

	// A new server on the same address space (fresh port): redirect by
	// dialing a fresh transport — lazily reconnecting transports keep
	// their address, so reuse the port by binding srv2 to it.
	srv2 := server.New(rdb, server.Config{Addr: addr})
	srv2.AttachReplica(rep)
	if _, err := srv2.Start(); err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	defer srv2.Close()
	if err := wire.Ship(&repl.Frame{Kind: repl.FrameRecord, Epoch: 1, Seq: 2,
		Op: repl.RecInsert, Key: key64(2), Val: key64(2)}); err != nil {
		t.Fatalf("ship after reconnect: %v", err)
	}
	if rep.AppliedSeq() != 2 {
		t.Fatalf("applied = %d, want 2", rep.AppliedSeq())
	}
}
