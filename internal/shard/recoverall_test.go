package shard_test

import (
	"errors"
	"strings"
	"testing"

	"spash/internal/alloc"
	"spash/internal/core"
	"spash/internal/pmem"
	"spash/internal/shard"
)

// rootGeomWord is core's rootGeom slot (the geometry stamp validated
// before any structural state is trusted).
const rootGeomWord = 3

func crashAll(units []*shard.Unit) []*pmem.Pool {
	pools := make([]*pmem.Pool, len(units))
	for i, u := range units {
		pools[i] = u.Pool
		u.Pool.Crash()
	}
	return pools
}

// TestRecoverAllFirstGeometryError: with geometry corrupted on several
// shards at once, RecoverAll must report the lowest-index failure
// (Parallel's first-error-by-index contract), typed and naming the
// shard.
func TestRecoverAllFirstGeometryError(t *testing.T) {
	units, err := shard.OpenAll(3, smallPlatform(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the geometry stamp (segment-size bits) on shards 1 AND 2
	// simultaneously.
	for _, i := range []int{1, 2} {
		p := units[i].Pool
		c := p.NewCtx()
		g := p.Load64(c, alloc.RootAddr(rootGeomWord))
		p.Store64(c, alloc.RootAddr(rootGeomWord), g+(1<<32))
		c.Release()
	}
	pools := crashAll(units)
	_, err = shard.RecoverAll(pools, core.Config{})
	if err == nil {
		t.Fatal("RecoverAll accepted two corrupted geometry stamps")
	}
	var ge *core.GeometryError
	if !errors.As(err, &ge) || ge.Field != "segment-size" {
		t.Fatalf("want typed segment-size geometry error, got %v", err)
	}
	if !strings.Contains(err.Error(), "shard 1:") || strings.Contains(err.Error(), "shard 2:") {
		t.Fatalf("want the first failure by index (shard 1), got %q", err)
	}
}

// TestRecoverAllEpochDisagreement: shards recovered together must
// carry the same promotion epoch; a mixed set (here shards 1 and 2
// one epoch ahead of shard 0) is a geometry failure naming the first
// disagreeing shard, not a silently split-brained database.
func TestRecoverAllEpochDisagreement(t *testing.T) {
	units, err := shard.OpenAll(3, smallPlatform(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		c := units[i].Pool.NewCtx()
		units[i].Ix.BumpEpoch(c)
		c.Release()
	}
	pools := crashAll(units)
	_, err = shard.RecoverAll(pools, core.Config{})
	if err == nil {
		t.Fatal("RecoverAll accepted shards with disagreeing epochs")
	}
	var ge *core.GeometryError
	if !errors.As(err, &ge) || ge.Field != "epoch" {
		t.Fatalf("want typed epoch geometry error, got %v", err)
	}
	if ge.Device != 2 || ge.Requested != 1 {
		t.Fatalf("epoch detail: have %d, shard 0 has %d", ge.Device, ge.Requested)
	}
	if !strings.Contains(err.Error(), "shard 1:") {
		t.Fatalf("want the first disagreeing shard (1) named, got %q", err)
	}

	// Agreement restored — shard 0 bumped to match — recovers fine:
	// the check rejects disagreement, not promotion itself.
	u0, err := shard.Recover(pools[0], core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := u0.Pool.NewCtx()
	u0.Ix.BumpEpoch(c)
	c.Release()
	for _, p := range pools {
		p.Crash()
	}
	units2, err := shard.RecoverAll(pools, core.Config{})
	if err != nil {
		t.Fatalf("recovery with agreeing epochs: %v", err)
	}
	if e := units2[0].Ix.Epoch(); e != 2 {
		t.Fatalf("recovered epoch = %d, want 2", e)
	}
}
