// Package shard is the unit of horizontal partitioning: one simulated
// PM pool with its allocator, one core.Index, and one bootstrap
// context, self-contained enough that N of them compose into a
// partitioned database with no shared state at all.
//
// Every shard owns a private HTM domain (its index's transactional
// memory, version-stripe table and vsync serialisation group) and a
// private media device (pool, CPU-cache model and XPBuffer). Nothing
// is shared between shards — no version clock, no allocator arena, no
// commit token — so the cross-shard coordination cost is exactly zero,
// the property Dash argues a PM hash table needs to scale and the
// Spash paper demonstrates up to 224 threads.
//
// Routing uses the LOW bits of the 64-bit key hash (Of). The core
// index resolves its directory with the HIGH bits (hash.Prefix), so
// the two partitioning levels draw from disjoint ends of the hash:
// conditioning on a shard leaves the in-shard directory distribution
// uniform, and every shard grows the same balanced extendible
// structure a standalone index would.
package shard

import (
	"fmt"
	"runtime"
	"sync"

	"spash/internal/alloc"
	"spash/internal/core"
	"spash/internal/pmem"
)

// Unit is one self-contained shard: a simulated device, its allocator,
// the index living on it, and the bootstrap context used to build or
// recover it.
type Unit struct {
	Pool  *pmem.Pool
	Alloc *alloc.Allocator
	Ix    *core.Index
	Ctx   *pmem.Ctx
}

// Of routes a key hash to one of n shards using the low hash bits
// (disjoint from the directory's high-bit prefix; see the package
// comment). n must be >= 1.
func Of(h uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(h % uint64(n))
}

// DefaultShards is the shard count a zero Options.Shards resolves to:
// one shard per schedulable CPU, the configuration that divides the
// machine's cores among independent HTM domains.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// minPoolPerShard keeps a split shard pool large enough for the
// allocator's root area, the segment registry, a seal table and an
// initial directory of segments.
const minPoolPerShard = 4 << 20

// SplitPlatform derives the per-shard device configuration from a
// whole-database platform config. Pool capacity is divided so N shards
// store the same total data a single-shard database would (a floor
// keeps tiny configurations usable). The cache is NOT divided: the
// hardware analogue of a shard is a socket of the paper's 4-socket,
// 224-thread testbed, and every socket brings its own LLC (and its own
// DIMM bandwidth — which is why the harness bounds media time by the
// hottest device rather than summing). With n == 1 the configuration
// is returned unchanged, preserving exact single-shard behaviour.
func SplitPlatform(cfg pmem.Config, n int) pmem.Config {
	if n <= 1 {
		return cfg
	}
	full := cfg
	if full.PoolSize == 0 {
		full.PoolSize = pmem.DefaultConfig().PoolSize
	}
	full.PoolSize /= uint64(n)
	if full.PoolSize < minPoolPerShard {
		full.PoolSize = minPoolPerShard
	}
	return full
}

// Open provisions a fresh device and builds a new index on it.
func Open(platform pmem.Config, cfg core.Config) (*Unit, error) {
	pool := pmem.New(platform)
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		return nil, fmt.Errorf("formatting pool: %w", err)
	}
	ix, err := core.Open(c, pool, al, cfg)
	if err != nil {
		return nil, fmt.Errorf("creating index: %w", err)
	}
	return &Unit{Pool: pool, Alloc: al, Ix: ix, Ctx: c}, nil
}

// Recover reopens a shard on an existing device.
func Recover(pool *pmem.Pool, cfg core.Config) (*Unit, error) {
	c := pool.NewCtx()
	ix, al, err := core.Recover(c, pool, cfg)
	if err != nil {
		return nil, err
	}
	return &Unit{Pool: pool, Alloc: al, Ix: ix, Ctx: c}, nil
}

// Parallel runs fn(i) for i in [0,n) on n goroutines and returns the
// first error (by index order, so fan-out failures are deterministic).
func Parallel(n int, fn func(i int) error) error {
	if n == 1 {
		return fn(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// OpenAll provisions n fresh shards in parallel, each on a device
// derived from platform by SplitPlatform. The first failure (in shard
// order) aborts the open.
func OpenAll(n int, platform pmem.Config, cfg core.Config) ([]*Unit, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", n)
	}
	per := SplitPlatform(platform, n)
	units := make([]*Unit, n)
	err := Parallel(n, func(i int) error {
		u, err := Open(per, cfg)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		u.Ix.SetShard(i)
		units[i] = u
		return nil
	})
	if err != nil {
		return nil, err
	}
	return units, nil
}

// RecoverAll reopens one shard per existing device, in parallel. The
// slice order defines the shard order and must match the order the
// database was opened with (the router depends on it).
func RecoverAll(pools []*pmem.Pool, cfg core.Config) ([]*Unit, error) {
	n := len(pools)
	if n == 0 {
		return nil, fmt.Errorf("shard: no devices to recover")
	}
	units := make([]*Unit, n)
	err := Parallel(n, func(i int) error {
		if pools[i] == nil {
			return fmt.Errorf("shard %d: nil device", i)
		}
		u, err := Recover(pools[i], cfg)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		u.Ix.SetShard(i)
		units[i] = u
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Every device must carry the same promotion epoch: a mixed set
	// means the caller assembled shards from different replication
	// histories (e.g. one device from a deposed primary), and routing
	// across them would silently interleave divergent timelines.
	for i := 1; i < n; i++ {
		if e0, ei := units[0].Ix.Epoch(), units[i].Ix.Epoch(); ei != e0 {
			return nil, fmt.Errorf("shard %d: %w", i,
				&core.GeometryError{Field: "epoch", Device: ei, Requested: e0})
		}
	}
	return units, nil
}

// SplitBatch executes a pipelined batch against per-shard handles:
// ops are partitioned by key hash, each shard's sub-batch runs through
// that shard's pipelined path, and results (Result/Found/Err) are
// copied back into the caller's slice in place. Order within a shard
// is preserved; cross-shard order is not observable to the caller
// because batch results are positional.
func SplitBatch(hs []*core.Handle, ops []core.BatchOp) {
	n := len(hs)
	if n == 1 {
		hs[0].ExecBatch(ops)
		return
	}
	idx := make([][]int, n)
	for i := range ops {
		s := Of(core.KeyHash(ops[i].Key), n)
		idx[s] = append(idx[s], i)
	}
	for s, list := range idx {
		if len(list) == 0 {
			continue
		}
		sub := make([]core.BatchOp, len(list))
		for j, i := range list {
			sub[j] = ops[i]
		}
		hs[s].ExecBatch(sub)
		for j, i := range list {
			ops[i] = sub[j]
		}
	}
}
