package shard_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"spash/internal/core"
	"spash/internal/pmem"
	"spash/internal/shard"
)

func smallPlatform() pmem.Config {
	cfg := pmem.DefaultConfig()
	cfg.PoolSize = 64 << 20
	cfg.CacheSize = 2 << 20
	return cfg
}

func key(i int) []byte {
	k := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, uint64(i))
	return k
}

func TestOfRouting(t *testing.T) {
	for n := 1; n <= 8; n++ {
		counts := make([]int, n)
		for i := 0; i < 4096; i++ {
			s := shard.Of(core.KeyHash(key(i)), n)
			if s < 0 || s >= n {
				t.Fatalf("Of routed hash to shard %d of %d", s, n)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c == 0 {
				t.Errorf("n=%d: shard %d received no keys", n, s)
			}
		}
	}
}

func TestSplitPlatformFloor(t *testing.T) {
	cfg := smallPlatform()
	per := shard.SplitPlatform(cfg, 4)
	if per.PoolSize != cfg.PoolSize/4 {
		t.Fatalf("4-way split of %d = %d", cfg.PoolSize, per.PoolSize)
	}
	if per.CacheSize != cfg.CacheSize {
		t.Fatalf("split must not divide the cache (per-socket LLC): %d", per.CacheSize)
	}
	tiny := cfg
	tiny.PoolSize = 8 << 20
	per = shard.SplitPlatform(tiny, 64)
	if per.PoolSize < 4<<20 {
		t.Fatalf("floor violated: %d", per.PoolSize)
	}
	if same := shard.SplitPlatform(cfg, 1); same != cfg {
		t.Fatal("n=1 must return the config unchanged")
	}
}

// TestParallelShardLifecycle opens shards in parallel, hammers each
// from its own goroutine (the no-shared-state contract the package
// exists for), recovers them in parallel on the same devices, and
// checks the data survived. Run under -race this verifies that shard
// fan-out paths share nothing mutable.
func TestParallelShardLifecycle(t *testing.T) {
	const n, perShard = 4, 600
	units, err := shard.OpenAll(n, smallPlatform(), core.Config{InitialDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s, u := range units {
		wg.Add(1)
		go func(s int, u *shard.Unit) {
			defer wg.Done()
			c := u.Pool.NewCtx()
			defer c.Release()
			h := u.Ix.NewHandle(c)
			defer h.Close()
			for i := 0; i < perShard; i++ {
				if err := h.Insert(key(s*perShard+i), key(i)); err != nil {
					t.Errorf("shard %d insert %d: %v", s, i, err)
					return
				}
			}
		}(s, u)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	pools := make([]*pmem.Pool, n)
	for s, u := range units {
		u.Ctx.Release()
		pools[s] = u.Pool
	}
	units, err = shard.RecoverAll(pools, core.Config{InitialDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for s, u := range units {
		h := u.Ix.NewHandle(u.Ctx)
		for i := 0; i < perShard; i++ {
			got, ok, err := h.Search(key(s*perShard+i), nil)
			if err != nil || !ok {
				t.Fatalf("shard %d lost key %d after recovery (ok=%v err=%v)", s, i, ok, err)
			}
			if want := key(i); string(got) != string(want) {
				t.Fatalf("shard %d key %d: got %x want %x", s, i, got, want)
			}
		}
		h.Close()
		u.Ctx.Release()
	}
}

// TestSplitBatchPositional checks that SplitBatch partitions a mixed
// batch by key hash and copies results back positionally.
func TestSplitBatchPositional(t *testing.T) {
	const n, total = 3, 900
	units, err := shard.OpenAll(n, smallPlatform(), core.Config{InitialDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]*core.Handle, n)
	for s, u := range units {
		hs[s] = u.Ix.NewHandle(u.Ctx)
	}
	defer func() {
		for s, u := range units {
			hs[s].Close()
			u.Ctx.Release()
		}
	}()

	ops := make([]core.BatchOp, total)
	for i := range ops {
		ops[i] = core.BatchOp{Kind: core.OpInsert, Key: key(i), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	shard.SplitBatch(hs, ops)
	for i, op := range ops {
		if op.Err != nil {
			t.Fatalf("insert %d: %v", i, op.Err)
		}
	}

	reads := make([]core.BatchOp, total)
	for i := range reads {
		reads[i] = core.BatchOp{Kind: core.OpSearch, Key: key(i)}
	}
	shard.SplitBatch(hs, reads)
	for i, op := range reads {
		if op.Err != nil || !op.Found {
			t.Fatalf("search %d: found=%v err=%v", i, op.Found, op.Err)
		}
		if want := fmt.Sprintf("v%d", i); string(op.Result) != want {
			t.Fatalf("search %d: got %q want %q", i, op.Result, want)
		}
	}
}

// TestParallelFirstError checks the deterministic (index-order) error
// contract of the fan-out helper.
func TestParallelFirstError(t *testing.T) {
	err := shard.Parallel(8, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom 3" {
		t.Fatalf("want first error by index order (boom 3), got %v", err)
	}
	if err := shard.Parallel(4, func(int) error { return nil }); err != nil {
		t.Fatalf("clean fan-out returned %v", err)
	}
}
