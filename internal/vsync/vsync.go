// Package vsync provides mutual-exclusion primitives instrumented for
// the virtual-time performance model.
//
// The reproduction measures throughput in virtual time (see package
// pmem): each worker goroutine advances a private clock. Real blocking
// on a contended lock does not advance any clock, so contention would
// be invisible. Instead, every lock accumulates the total virtual time
// for which it was held exclusively; since two critical sections of
// the same lock can never overlap, that total is a lower bound on the
// elapsed time of the run. The harness folds the maximum such total —
// the hottest lock — into its elapsed-time estimate:
//
//	elapsed = max(max worker clock, hottest lock serial time,
//	              media bytes / bandwidth)
//
// A zipfian workload hammering one per-segment lock therefore
// bottlenecks on that lock's serial time, exactly the behaviour that
// makes lock-based persistent hash tables scale poorly in the paper
// (§VI-C, §VI-D).
//
// Every lock belongs to a Group; the group tracks the maximum serial
// total over its locks so indexes do not have to enumerate their locks
// at the end of a run.
package vsync

import (
	"sync"
	"sync/atomic"

	"spash/internal/pmem"
)

// Acquisition cost constants (virtual nanoseconds). An uncontended
// atomic RMW on a shared line costs a few tens of cycles; a reader
// acquiring a read-write lock still performs an RMW on the lock word,
// which serialises on the line even though readers admit each other.
const (
	// AcquireNS is charged to the acquiring worker's clock for every
	// lock or unlock operation.
	AcquireNS = 15
	// ReadSerialNS is the serialisation contributed by one reader
	// acquisition+release pair on the lock word's cacheline.
	ReadSerialNS = 50
	// WriteSerialNS is the fixed serialisation of a writer
	// acquisition on top of its hold time.
	WriteSerialNS = 50
)

// Group aggregates the serialisation totals of a set of locks.
type Group struct {
	maxSerial atomic.Int64
}

// MaxSerialNS returns the largest total serial time accumulated by any
// lock of the group: a lower bound on the elapsed time of the run.
func (g *Group) MaxSerialNS() int64 { return g.maxSerial.Load() }

// Reset zeroes the group's maximum (phase boundary). Individual lock
// totals keep growing; callers should measure phases by diffing
// MaxSerialNS only if locks are also reset, so the harness instead
// uses fresh indexes per phase or calls Reset on both.
func (g *Group) Reset() { g.maxSerial.Store(0) }

// Bump raises the group maximum to total if it exceeds it. Locks call
// it with their running totals; package htm calls it with per-stripe
// commit serialisation totals.
func (g *Group) Bump(total int64) {
	for {
		cur := g.maxSerial.Load()
		if total <= cur || g.maxSerial.CompareAndSwap(cur, total) {
			return
		}
	}
}

// Mutex is a mutual-exclusion lock with virtual-time accounting. The
// zero value is unusable; set G before first use (typically when the
// owning structure is built).
type Mutex struct {
	G     *Group
	mu    sync.Mutex
	start int64 // holder's clock at Lock; guarded by mu
	total int64 // accumulated serial ns; guarded by mu
}

// Lock acquires the mutex, charging the acquisition cost to c.
func (m *Mutex) Lock(c *pmem.Ctx) {
	m.mu.Lock()
	c.Charge(AcquireNS)
	m.start = c.Clock()
}

// Unlock releases the mutex, accounting the critical section's virtual
// duration as serial time.
func (m *Mutex) Unlock(c *pmem.Ctx) {
	c.Charge(AcquireNS)
	m.total += c.Clock() - m.start + WriteSerialNS
	if m.G != nil {
		m.G.Bump(m.total)
	}
	m.mu.Unlock()
}

// TotalSerialNS returns the lock's accumulated serial time. Callers
// must ensure the lock is quiescent.
func (m *Mutex) TotalSerialNS() int64 { return m.total }

// RWMutex is a read-write lock with virtual-time accounting. Writer
// critical sections serialise fully; readers admit each other but
// still pay (and account) the cacheline serialisation of the lock
// word, which is what limits reader scalability of real read-write
// locks under skew.
type RWMutex struct {
	G     *Group
	mu    sync.RWMutex
	start int64        // writer's clock at Lock; guarded by mu
	total atomic.Int64 // accumulated serial ns
}

// Lock acquires the write lock.
func (rw *RWMutex) Lock(c *pmem.Ctx) {
	rw.mu.Lock()
	c.Charge(AcquireNS)
	rw.start = c.Clock()
}

// Unlock releases the write lock.
func (rw *RWMutex) Unlock(c *pmem.Ctx) {
	c.Charge(AcquireNS)
	t := rw.total.Add(c.Clock() - rw.start + WriteSerialNS)
	if rw.G != nil {
		rw.G.Bump(t)
	}
	rw.mu.Unlock()
}

// RLock acquires the read lock.
func (rw *RWMutex) RLock(c *pmem.Ctx) {
	rw.mu.RLock()
	c.Charge(AcquireNS)
}

// RUnlock releases the read lock, accounting the lock-word
// serialisation of the reader pair.
func (rw *RWMutex) RUnlock(c *pmem.Ctx) {
	c.Charge(AcquireNS)
	t := rw.total.Add(ReadSerialNS)
	if rw.G != nil {
		rw.G.Bump(t)
	}
	rw.mu.RUnlock()
}

// TotalSerialNS returns the lock's accumulated serial time.
func (rw *RWMutex) TotalSerialNS() int64 { return rw.total.Load() }
