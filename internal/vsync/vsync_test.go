package vsync

import (
	"sync"
	"testing"

	"spash/internal/pmem"
)

func newCtx() *pmem.Ctx {
	return pmem.New(pmem.Config{PoolSize: 1 << 20}).NewCtx()
}

func TestMutexAccountsHoldTime(t *testing.T) {
	var g Group
	m := Mutex{G: &g}
	c := newCtx()
	m.Lock(c)
	c.Charge(1000)
	m.Unlock(c)
	if got := m.TotalSerialNS(); got < 1000 {
		t.Fatalf("serial = %d, want >= 1000", got)
	}
	if g.MaxSerialNS() != m.TotalSerialNS() {
		t.Fatalf("group max %d != lock total %d", g.MaxSerialNS(), m.TotalSerialNS())
	}
}

func TestGroupTracksHottestLock(t *testing.T) {
	var g Group
	hot := Mutex{G: &g}
	cold := Mutex{G: &g}
	c := newCtx()
	for i := 0; i < 10; i++ {
		hot.Lock(c)
		c.Charge(500)
		hot.Unlock(c)
	}
	cold.Lock(c)
	c.Charge(100)
	cold.Unlock(c)
	if g.MaxSerialNS() != hot.TotalSerialNS() {
		t.Fatalf("group max %d, hottest lock %d", g.MaxSerialNS(), hot.TotalSerialNS())
	}
}

func TestRWMutexReaderAccounting(t *testing.T) {
	var g Group
	rw := RWMutex{G: &g}
	c := newCtx()
	const readers = 100
	for i := 0; i < readers; i++ {
		rw.RLock(c)
		c.Charge(10000) // long read sections do NOT serialise
		rw.RUnlock(c)
	}
	if got := rw.TotalSerialNS(); got != readers*ReadSerialNS {
		t.Fatalf("reader serial = %d, want %d", got, readers*ReadSerialNS)
	}
	rw.Lock(c)
	c.Charge(700)
	rw.Unlock(c)
	if got := rw.TotalSerialNS(); got < readers*ReadSerialNS+700 {
		t.Fatalf("after writer: %d", got)
	}
}

func TestMutexExcludesConcurrently(t *testing.T) {
	var g Group
	m := Mutex{G: &g}
	pool := pmem.New(pmem.Config{PoolSize: 1 << 20})
	var wg sync.WaitGroup
	counter := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := pool.NewCtx()
			for i := 0; i < 1000; i++ {
				m.Lock(c)
				counter++
				m.Unlock(c)
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (mutual exclusion broken)", counter)
	}
}

func TestGroupReset(t *testing.T) {
	var g Group
	m := Mutex{G: &g}
	c := newCtx()
	m.Lock(c)
	m.Unlock(c)
	if g.MaxSerialNS() == 0 {
		t.Fatal("expected nonzero max")
	}
	g.Reset()
	if g.MaxSerialNS() != 0 {
		t.Fatal("reset did not zero")
	}
}
