package ycsb

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// OpKind is the type of one generated request.
type OpKind int

const (
	OpSearch OpKind = iota
	OpUpdate
	OpInsert
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpSearch:
		return "search"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	default:
		return "delete"
	}
}

// Mix is an operation mixture in percent; the fields must sum to 100.
type Mix struct {
	SearchPct int
	UpdatePct int
	InsertPct int
	DeletePct int
}

// The run-phase mixes evaluated in the paper (§VI-C): YCSB-style
// read-intensive (B-like), balanced (A-like) and write-intensive
// mixtures of Search and Update.
var (
	ReadIntensive  = Mix{SearchPct: 90, UpdatePct: 10}
	Balanced       = Mix{SearchPct: 50, UpdatePct: 50}
	WriteIntensive = Mix{SearchPct: 10, UpdatePct: 90}
	SearchOnly     = Mix{SearchPct: 100}
	UpdateOnly     = Mix{UpdatePct: 100}
	InsertOnly     = Mix{InsertPct: 100}
)

// Name returns a short label for a known mix.
func (m Mix) Name() string {
	switch m {
	case ReadIntensive:
		return "read-intensive(90/10)"
	case Balanced:
		return "balanced(50/50)"
	case WriteIntensive:
		return "write-intensive(10/90)"
	case SearchOnly:
		return "search-only"
	case UpdateOnly:
		return "update-only"
	case InsertOnly:
		return "insert-only"
	}
	return fmt.Sprintf("mix(%d/%d/%d/%d)", m.SearchPct, m.UpdatePct, m.InsertPct, m.DeletePct)
}

// Pick draws an operation kind according to the mix.
func (m Mix) Pick(rng *rand.Rand) OpKind {
	x := rng.Intn(100)
	if x < m.SearchPct {
		return OpSearch
	}
	x -= m.SearchPct
	if x < m.UpdatePct {
		return OpUpdate
	}
	x -= m.UpdatePct
	if x < m.InsertPct {
		return OpInsert
	}
	return OpDelete
}

// KeyBytes formats a key id as the fixed 16-byte key used in the
// variable-size macro-benchmarks (the paper uses 16-byte keys). The
// encoding is "u:" + 6 zero bytes + 8-byte big-endian id, so keys are
// unique and incompressible by accident.
func KeyBytes(dst []byte, id uint64) []byte {
	dst = dst[:0]
	dst = append(dst, 'u', ':', 0, 0, 0, 0, 0, 0)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return append(dst, b[:]...)
}

// FillValue deterministically fills val as the payload for key id, so
// reads can be verified. val keeps its length.
func FillValue(val []byte, id uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], id*0x9E3779B97F4A7C15+1)
	for i := range val {
		val[i] = b[i&7] ^ byte(i>>3)
	}
}
