// Package ycsb reimplements the workload machinery of the Yahoo!
// Cloud Serving Benchmark (Cooper et al., SoCC'10) that the paper's
// macro evaluation uses (§VI-C): a zipfian request-key generator with
// the classic Gray et al. algorithm (the same one YCSB core uses,
// supporting the default skew θ = 0.99), its scrambled variant that
// spreads hot ranks over the whole key space, a uniform generator for
// the micro-benchmarks, and the read/update mixes of the evaluated
// workloads.
//
// Generators are deterministic given a seed; each worker should own
// its generator (they share only immutable precomputed constants).
package ycsb

import (
	"math"
	"math/rand"

	"spash/internal/hash"
)

// Generator produces request keys in [0, N).
type Generator interface {
	// Next returns the next key id.
	Next() uint64
}

// Uniform generates uniformly distributed keys, the access pattern of
// the paper's micro-benchmarks (§VI-B).
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n uint64, seed int64) *Uniform {
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next key id.
func (u *Uniform) Next() uint64 { return u.rng.Uint64() % u.n }

// zipfConsts holds the precomputed constants of Gray's algorithm;
// they depend only on (n, theta) and are shared between workers.
type zipfConsts struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 1 + 0.5^theta
}

func newZipfConsts(n uint64, theta float64) *zipfConsts {
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	c := &zipfConsts{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		half:  1 + math.Pow(0.5, theta),
	}
	c.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	return c
}

// zeta computes the generalised harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Zipfian generates zipf-distributed ranks: rank 0 is the most
// popular. The default YCSB skew is theta = 0.99.
type Zipfian struct {
	c   *zipfConsts
	rng *rand.Rand
}

// DefaultTheta is YCSB's default zipfian constant.
const DefaultTheta = 0.99

// NewZipfian returns a zipfian rank generator over [0, n) with the
// given skew. Precomputation is O(n).
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	return &Zipfian{c: newZipfConsts(n, theta), rng: rand.New(rand.NewSource(seed))}
}

// Fork returns an independent generator with the same distribution
// (sharing the precomputed constants) and its own seed.
func (z *Zipfian) Fork(seed int64) *Zipfian {
	return &Zipfian{c: z.c, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next zipf-distributed rank.
func (z *Zipfian) Next() uint64 {
	c := z.c
	u := z.rng.Float64()
	uz := u * c.zetan
	if uz < 1 {
		return 0
	}
	if uz < c.half {
		return 1
	}
	r := uint64(float64(c.n) * math.Pow(c.eta*u-c.eta+1, c.alpha))
	if r >= c.n {
		r = c.n - 1
	}
	return r
}

// Scrambled wraps a zipfian rank generator and spreads the hot ranks
// pseudo-randomly over the key space, as YCSB's
// ScrambledZipfianGenerator does — hot keys should not be physically
// clustered.
type Scrambled struct {
	z *Zipfian
}

// NewScrambled returns a scrambled-zipfian key generator over [0, n).
func NewScrambled(n uint64, theta float64, seed int64) *Scrambled {
	return &Scrambled{z: NewZipfian(n, theta, seed)}
}

// Fork returns an independent generator sharing precomputed state.
func (s *Scrambled) Fork(seed int64) *Scrambled {
	return &Scrambled{z: s.z.Fork(seed)}
}

// Next returns the next key id.
func (s *Scrambled) Next() uint64 {
	return scramble(s.z.Next(), s.z.c.n)
}

func scramble(rank, n uint64) uint64 {
	return hash.Sum64Uint64(rank) % n
}

// HotSet returns the k most-popular key ids of a scrambled-zipfian
// distribution over [0, n) — the oracle the paper compares its hotspot
// detector against (Fig 12a): ranks 0..k-1 after scrambling.
func HotSet(n uint64, k int) map[uint64]struct{} {
	set := make(map[uint64]struct{}, k)
	for rank := uint64(0); int(rank) < k; rank++ {
		set[scramble(rank, n)] = struct{}{}
	}
	return set
}

// IsHot reports whether key is among the top-k scrambled-zipfian keys.
// Convenience for oracle-mode hotness checks.
func IsHot(set map[uint64]struct{}, key uint64) bool {
	_, ok := set[key]
	return ok
}

// Latest is YCSB's "latest" distribution: recently inserted keys are
// the most popular (rank 0 = the newest key). The insertion frontier
// advances via Advance, e.g. as new records are appended.
type Latest struct {
	z   *Zipfian
	max uint64
}

// NewLatest returns a latest-distribution generator whose newest key
// id is max-1.
func NewLatest(max uint64, theta float64, seed int64) *Latest {
	return &Latest{z: NewZipfian(max, theta, seed), max: max}
}

// Next returns the next key id, skewed towards the newest.
func (l *Latest) Next() uint64 {
	r := l.z.Next()
	if r >= l.max {
		r = l.max - 1
	}
	return l.max - 1 - r
}

// Advance moves the insertion frontier forward by n keys. The
// underlying zipfian constants are reused (an approximation YCSB
// itself makes between recomputations).
func (l *Latest) Advance(n uint64) { l.max += n }
