package ycsb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestUniformRange(t *testing.T) {
	u := NewUniform(1000, 1)
	for i := 0; i < 10000; i++ {
		if k := u.Next(); k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	const n, draws = 100, 100000
	u := NewUniform(n, 2)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[u.Next()]++
	}
	want := draws / n
	for k, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("key %d drawn %d times, want ~%d", k, c, want)
		}
	}
}

// The zipfian generator must match the theoretical rank probabilities
// p(i) = (1/i^θ)/H_{n,θ}.
func TestZipfianMatchesTheory(t *testing.T) {
	const n, draws = 1000, 500000
	const theta = 0.99
	z := NewZipfian(n, theta, 3)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	h := zeta(n, theta)
	for _, rank := range []int{0, 1, 2, 9, 99} {
		want := float64(draws) / (math.Pow(float64(rank+1), theta) * h)
		got := float64(counts[rank])
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("rank %d: %v draws, theory %v", rank, got, want)
		}
	}
}

func TestZipfianRankOrdering(t *testing.T) {
	const n, draws = 10000, 200000
	z := NewZipfian(n, DefaultTheta, 4)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if !(counts[0] > counts[10] && counts[10] > counts[1000]) {
		t.Fatalf("rank popularity not monotone: %d, %d, %d", counts[0], counts[10], counts[1000])
	}
}

// Scrambling must preserve the skew (some keys much hotter than the
// median) while spreading hot keys over the id space.
func TestScrambledKeepsSkewAndSpreads(t *testing.T) {
	const n, draws = 100000, 200000
	s := NewScrambled(n, DefaultTheta, 5)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[s.Next()]++
	}
	freqs := make([]int, 0, len(counts))
	hot := make([]uint64, 0, 4)
	for k, c := range counts {
		freqs = append(freqs, c)
		if c > draws/100 {
			hot = append(hot, k)
		}
	}
	sort.Ints(freqs)
	if freqs[len(freqs)-1] < draws/100 {
		t.Fatalf("no hot key after scrambling: max freq %d", freqs[len(freqs)-1])
	}
	// Hot keys should not all sit in the low id range.
	spread := false
	for _, k := range hot {
		if k > n/4 {
			spread = true
		}
	}
	if len(hot) > 1 && !spread {
		t.Fatalf("hot keys clustered at low ids: %v", hot)
	}
}

func TestHotSetMatchesEmpiricalHotKeys(t *testing.T) {
	const n, draws = 100000, 300000
	s := NewScrambled(n, DefaultTheta, 6)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[s.Next()]++
	}
	hot := HotSet(n, 16)
	// The empirically hottest key must be in the oracle set.
	var top uint64
	best := 0
	for k, c := range counts {
		if c > best {
			top, best = k, c
		}
	}
	if !IsHot(hot, top) {
		t.Fatalf("empirically hottest key %d not in oracle hot set", top)
	}
}

func TestForkIsIndependentButSameDistribution(t *testing.T) {
	z := NewZipfian(1000, DefaultTheta, 7)
	f := z.Fork(8)
	if z.c != f.c {
		t.Fatal("fork did not share constants")
	}
	if z.rng == f.rng {
		t.Fatal("fork shares random state")
	}
}

func TestMixPick(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := map[OpKind]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[ReadIntensive.Pick(rng)]++
	}
	if got := counts[OpSearch]; got < draws*85/100 || got > draws*95/100 {
		t.Fatalf("search fraction %d/%d, want ~90%%", got, draws)
	}
	if counts[OpInsert] != 0 || counts[OpDelete] != 0 {
		t.Fatalf("unexpected ops: %v", counts)
	}
}

func TestMixSums(t *testing.T) {
	for _, m := range []Mix{ReadIntensive, Balanced, WriteIntensive, SearchOnly, UpdateOnly, InsertOnly} {
		if s := m.SearchPct + m.UpdatePct + m.InsertPct + m.DeletePct; s != 100 {
			t.Errorf("mix %s sums to %d", m.Name(), s)
		}
	}
}

func TestKeyBytesUniqueAndFixedSize(t *testing.T) {
	var buf [16]byte
	a := string(KeyBytes(buf[:], 1))
	b := string(KeyBytes(buf[:], 2))
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("key sizes %d/%d", len(a), len(b))
	}
	if a == b {
		t.Fatal("distinct ids produced equal keys")
	}
}

func TestFillValueDeterministic(t *testing.T) {
	v1 := make([]byte, 100)
	v2 := make([]byte, 100)
	FillValue(v1, 42)
	FillValue(v2, 42)
	if string(v1) != string(v2) {
		t.Fatal("FillValue not deterministic")
	}
	FillValue(v2, 43)
	if string(v1) == string(v2) {
		t.Fatal("different ids produced equal values")
	}
}

func TestLatestSkewsTowardNewest(t *testing.T) {
	const n, draws = 10000, 100000
	l := NewLatest(n, DefaultTheta, 17)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		k := l.Next()
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	if !(counts[n-1] > counts[n-100] && counts[n-100] > counts[100]) {
		t.Fatalf("latest not skewed: newest=%d recent=%d old=%d", counts[n-1], counts[n-100], counts[100])
	}
	l.Advance(5)
	seen := false
	for i := 0; i < 1000; i++ {
		if l.Next() >= n {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("Advance did not expose new keys")
	}
}
