// Replication roles, promotion, and the typed errors of the
// replication protocol (the shipping machinery itself lives in
// internal/repl; the role fencing has to live here because every
// Session write consults it).
//
// A DB opened with Options.Replica is a replica: its devices are
// mutated only by the replication apply path (ApplierSession), every
// client write fails typed with ErrNotPrimary, and reads stay
// available (possibly stale, bounded by the shipping lag). Promote
// flips the role after durably advancing the promotion epoch stamped
// in every shard's pool geometry — the fencing token that lets a
// promoted replica reject frames a deposed primary keeps shipping.
package spash

import (
	"errors"
	"fmt"
)

// Replication sentinels, matched with errors.Is.
var (
	// ErrNotPrimary is returned (wrapped in a *ReplicationError) by
	// write operations on a replica-role DB, and by replication apply
	// when a frame carries a stale promotion epoch (split-brain
	// fencing).
	ErrNotPrimary = errors.New("spash: not the primary")
	// ErrReplicaLag is returned (wrapped in a *ReplicationError) when
	// an operation requires a fully caught-up replica — promotion with
	// unapplied frames buffered loses acknowledged writes, so it is
	// refused. The replica's apply path also wraps it when a frame
	// cannot be accepted yet (sequence gap past the reorder window, or
	// a full pause buffer sheds the frame): the sender must retry or
	// resync.
	ErrReplicaLag = errors.New("spash: replica lags the primary")
	// ErrTransportTimeout is returned (wrapped in a *ReplicationError)
	// when one Ship attempt misses its per-frame deadline. The retry
	// policy (internal/repl.RetryPolicy) treats it as transient and
	// retries with backoff; the frame may still have been delivered —
	// the replica's idempotent apply absorbs the duplicate.
	ErrTransportTimeout = errors.New("spash: replication transport timeout")
	// ErrRetryExhausted is returned (wrapped in a *ReplicationError)
	// when every retry of a frame failed and the primary tripped its
	// circuit breaker into degraded-async mode, or when the bounded
	// spill queue is full and a write's frame had to be refused.
	ErrRetryExhausted = errors.New("spash: replication retries exhausted")
	// ErrNeedsReseed is returned (wrapped in a *ReplicationError) when
	// a replica's durable applied cursor can no longer anchor the
	// record stream: an ADR rejoin rolled back applies the cursor
	// covers, or the cursor fell behind the primary's replayable
	// horizon. The primary's auto-resync answers it with a
	// seal-verified FullSync re-seed; no operator step is needed.
	ErrNeedsReseed = errors.New("spash: replica needs reseed")
)

// ReplicationError is the typed error of the replication protocol:
// which operation was refused, on which shard (-1 when the operation
// is not shard-specific), and at which local promotion epoch. Match
// the cause with errors.Is (ErrNotPrimary, ErrReplicaLag) and the
// type with errors.As.
type ReplicationError struct {
	// Op names the refused operation ("insert", "promote", "apply",
	// "fetch", ...).
	Op string
	// Shard is the shard the operation addressed, -1 when none.
	Shard int
	// Epoch is the local promotion epoch at refusal time.
	Epoch uint64
	// Err is the cause (ErrNotPrimary, ErrReplicaLag, or a transport
	// error).
	Err error
}

func (e *ReplicationError) Error() string {
	if e.Shard >= 0 {
		return fmt.Sprintf("spash: replication %s on shard %d (epoch %d): %v", e.Op, e.Shard, e.Epoch, e.Err)
	}
	return fmt.Sprintf("spash: replication %s (epoch %d): %v", e.Op, e.Epoch, e.Err)
}

func (e *ReplicationError) Unwrap() error { return e.Err }

// IsReplica reports whether the DB is currently in the replica role
// (writes fenced; see Options.Replica and Promote).
func (db *DB) IsReplica() bool { return db.replica.Load() }

// Epoch returns the promotion epoch stamped on the database's devices:
// 1 for a freshly opened DB, advanced by Promote. All shards carry the
// same epoch (RecoverAll validates agreement).
func (db *DB) Epoch() uint64 { return db.units[0].Ix.Epoch() }

// Promote turns a replica-role DB into the primary. The epoch word in
// every shard's pool geometry is durably advanced first (store, flush,
// fence per shard), then the write fence drops; a frame shipped by a
// deposed primary afterwards carries the old epoch and fails apply
// with ErrNotPrimary. The DB must be quiescent and fully caught up —
// the replication layer (internal/repl.Replica.Promote) drains and
// checks lag before calling this. Promoting a DB that is already
// primary is an error.
func (db *DB) Promote() (uint64, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if !db.replica.Load() {
		return db.Epoch(), &ReplicationError{Op: "promote", Shard: -1, Epoch: db.Epoch(),
			Err: errors.New("already primary")}
	}
	// Each shard gets a fresh context (same reasoning as TryShrink:
	// the bootstrap context's virtual clock must stay per-worker).
	for _, u := range db.units {
		c := u.Pool.NewCtx()
		u.Ix.BumpEpoch(c)
		c.Release()
	}
	db.replica.Store(false)
	return db.Epoch(), nil
}

// ApplierSession returns a session exempt from the replica write
// fence: the replication apply path (internal/repl.Replica) mutates
// the replica's shards through it. Everything else about the session
// is ordinary — one per applier goroutine, Close when done. Misusing
// it for client writes forfeits the replica's crash-consistency
// contract with its primary.
func (db *DB) ApplierSession() *Session {
	s := db.Session()
	s.applier = true
	return s
}

// writeGate is the common precondition of every Session write: the DB
// must be open, and — unless this is the replication applier — must
// currently hold the primary role.
func (s *Session) writeGate(op string, key []byte) error {
	if s.db.closed.Load() {
		return ErrClosed
	}
	if s.db.replica.Load() && !s.applier {
		return &ReplicationError{
			Op:    op,
			Shard: shardOfKey(key, len(s.hs)),
			Epoch: s.db.Epoch(),
			Err:   ErrNotPrimary,
		}
	}
	return nil
}
