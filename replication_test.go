package spash

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"spash/internal/pmem"
)

func TestReplicaRoleAndPromotion(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 2, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !db.IsReplica() {
		t.Fatal("Options.Replica not honoured")
	}
	if db.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", db.Epoch())
	}
	s := db.Session()
	defer s.Close()
	err = s.Insert([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("replica Insert: %v", err)
	}
	var re *ReplicationError
	if !errors.As(err, &re) || re.Op != "insert" || re.Shard < 0 || re.Shard >= 2 {
		t.Fatalf("replication error detail: %+v", re)
	}
	// Reads stay available on a replica.
	if _, _, err := s.Get([]byte("k"), nil); err != nil {
		t.Fatalf("replica Get: %v", err)
	}
	// The applier session bypasses the fence.
	as := db.ApplierSession()
	defer as.Close()
	if err := as.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("applier Insert: %v", err)
	}

	epoch, err := db.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || db.IsReplica() {
		t.Fatalf("promote: epoch=%d replica=%v", epoch, db.IsReplica())
	}
	if err := s.Insert([]byte("k2"), []byte("v")); err != nil {
		t.Fatalf("Insert after promotion: %v", err)
	}
	// Promoting a primary is refused, typed.
	if _, err := db.Promote(); err == nil {
		t.Fatal("promoting a primary succeeded")
	} else if !errors.As(err, &re) || re.Op != "promote" {
		t.Fatalf("promote-primary error: %v", err)
	}
}

func TestPromotionEpochSurvivesRecovery(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 2, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	as := db.ApplierSession()
	if err := as.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	as.Close()
	if _, err := db.Promote(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	platforms := db.Platforms()
	db.Crash()
	db2, err := RecoverAll(platforms, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2", db2.Epoch())
	}
	if db2.IsReplica() {
		t.Fatal("recovered without Options.Replica but came back a replica")
	}
}

func TestDescribeErrorReplication(t *testing.T) {
	notPrimary := &ReplicationError{Op: "insert", Shard: 1, Epoch: 3, Err: ErrNotPrimary}
	if d := DescribeError(notPrimary); !strings.Contains(d, "retry against the current primary") {
		t.Fatalf("DescribeError(ErrNotPrimary) = %q", d)
	}
	lag := &ReplicationError{Op: "promote", Shard: -1, Epoch: 1, Err: ErrReplicaLag}
	if d := DescribeError(lag); !strings.Contains(d, "drain the apply stream") {
		t.Fatalf("DescribeError(ErrReplicaLag) = %q", d)
	}
	other := &ReplicationError{Op: "fetch", Shard: 0, Epoch: 1, Err: errors.New("wire down")}
	if d := DescribeError(other); d != other.Error() {
		t.Fatalf("DescribeError(other) = %q", d)
	}
}

// TestCloseScrubberRace: Close racing StartScrub must either stop the
// scrubber or refuse to start it with ErrClosed — a scrub goroutine
// can never outlive Close unobserved. Run under -race in CI.
func TestCloseScrubberRace(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		db, err := Open(Options{Platform: smallPlatform(), Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var scrubs []*Scrubber
		var mu sync.Mutex
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			for n := 0; n < 50; n++ {
				sc, err := db.StartScrub(ScrubOptions{})
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("StartScrub: %v", err)
					}
					return
				}
				mu.Lock()
				scrubs = append(scrubs, sc)
				mu.Unlock()
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			db.Close()
		}()
		close(start)
		wg.Wait()
		// Every scrubber that did launch was stopped by Close; Stop is
		// idempotent and must return promptly rather than hang on a
		// still-running walker.
		for _, sc := range scrubs {
			_ = sc.Stop()
		}
	}
}

// TestCrashLostLinesPerShard: DB.Crash reports the total rolled-back
// cachelines, and each device's stats break the loss down per shard.
func TestCrashLostLinesPerShard(t *testing.T) {
	cfg := smallPlatform()
	cfg.Mode = pmem.ADR
	db, err := Open(Options{Platform: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	for i := uint64(0); i < 4000; i++ {
		if err := s.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	total := db.Crash()
	if total <= 0 {
		t.Fatal("ADR crash after a write burst rolled back nothing; the breakdown test is vacuous")
	}
	st := db.Stats()
	var sum uint64
	perShard := make([]uint64, len(st.Shards))
	for i, sh := range st.Shards {
		perShard[i] = sh.Memory.CrashLostLines
		sum += sh.Memory.CrashLostLines
	}
	if sum != uint64(total) {
		t.Fatalf("per-shard CrashLostLines sum to %d, Crash reported %d (%v)", sum, total, perShard)
	}
	if st.Memory.CrashLostLines != uint64(total) {
		t.Fatalf("aggregate CrashLostLines = %d, want %d", st.Memory.CrashLostLines, total)
	}
	// The same breakdown must flow through the observability snapshots.
	var obsSum uint64
	for _, snap := range db.ObsSnapshots() {
		obsSum += snap.Mem.CrashLostLines
	}
	if obsSum != uint64(total) {
		t.Fatalf("ObsSnapshots CrashLostLines sum to %d, want %d", obsSum, total)
	}

	// eADR control: visibility is durability, a crash loses nothing.
	edb, err := Open(Options{Platform: smallPlatform(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	es := edb.Session()
	for i := uint64(0); i < 1000; i++ {
		if err := es.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if lost := edb.Crash(); lost != 0 {
		t.Fatalf("eADR crash lost %d lines", lost)
	}
	for i, sh := range edb.Stats().Shards {
		if sh.Memory.CrashLostLines != 0 {
			t.Fatalf("eADR shard %d reports %d lost lines", i, sh.Memory.CrashLostLines)
		}
	}
}
