package spash

import (
	"errors"
	"sync"
	"testing"

	"spash/internal/alloc"
	"spash/internal/indextest"
	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

// smallPlatform keeps multi-shard tests fast: 4 shards on a default
// 256 MB pool would format 4×64 MB devices per subtest.
func smallPlatform() pmem.Config {
	cfg := pmem.DefaultConfig()
	cfg.PoolSize = 64 << 20
	cfg.CacheSize = 2 << 20
	return cfg
}

func TestShardedRoundTrip(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Shards() != 4 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
	s := db.Session()
	defer s.Close()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if err := s.Insert(key64(i), key64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != n {
		t.Fatalf("Len = %d", db.Len())
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := s.Get(key64(i), nil)
		if err != nil || !ok || string(v) != string(key64(i*3)) {
			t.Fatalf("key %d: %q %v %v", i, v, ok, err)
		}
	}
	// Every shard must hold a fair slice of the keys (low-bit routing
	// of sequential 64-bit keys is near-uniform).
	st := db.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("per-shard stats: %d entries", len(st.Shards))
	}
	var sum int64
	for i, sh := range st.Shards {
		if sh.Index.Entries < n/8 {
			t.Fatalf("shard %d holds only %d of %d keys", i, sh.Index.Entries, n)
		}
		sum += sh.Index.Entries
	}
	if sum != st.Index.Entries || sum != n {
		t.Fatalf("aggregate %d != sum of shards %d", st.Index.Entries, sum)
	}
}

func TestShardedBatchRouting(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()
	const n = 500
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Key: key64(uint64(i)), Value: key64(uint64(i * 7))}
	}
	s.ExecBatch(ops)
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("insert %d: %v", i, ops[i].Err)
		}
	}
	gets := make([]Op, n)
	for i := range gets {
		gets[i] = Op{Kind: OpGet, Key: key64(uint64(i))}
	}
	s.ExecBatch(gets)
	for i := range gets {
		if !gets[i].Found || string(gets[i].Result) != string(key64(uint64(i*7))) {
			t.Fatalf("get %d: found=%v result=%q", i, gets[i].Found, gets[i].Result)
		}
	}
}

func TestShardedCrashRecoverAll(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		if err := s.Insert(key64(i), key64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	platforms := db.Platforms()
	if len(platforms) != 4 {
		t.Fatalf("platforms: %d", len(platforms))
	}
	if lost := db.Crash(); lost != 0 {
		t.Fatalf("eADR crash lost %d lines", lost)
	}
	db2, err := RecoverAll(platforms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Shards() != 4 {
		t.Fatalf("recovered shards: %d", db2.Shards())
	}
	if db2.Len() != n {
		t.Fatalf("recovered len %d", db2.Len())
	}
	s2 := db2.Session()
	for i := uint64(0); i < n; i++ {
		v, ok, err := s2.Get(key64(i), nil)
		if err != nil || !ok || string(v) != string(key64(i*3)) {
			t.Fatalf("key %d after recovery: %q %v %v", i, v, ok, err)
		}
	}
}

func TestShardedSingleAccessorsPanic(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"Platform", func() { db.Platform() }},
		{"Index", func() { db.Index() }},
		{"Group", func() { db.Group() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on a 2-shard DB", tc.name)
				}
			}()
			tc.call()
		})
	}
}

func TestCloseInvalidatesSessions(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if err := s.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	scrub, err := db.StartScrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}

	db.Close()
	db.Close() // double close is safe

	if err := s.Insert([]byte("k2"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after close: %v", err)
	}
	if _, _, err := s.Get([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := s.Update([]byte("k"), []byte("v2")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Update after close: %v", err)
	}
	if _, err := s.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after close: %v", err)
	}
	ops := []Op{{Kind: OpGet, Key: []byte("k")}}
	s.ExecBatch(ops)
	if !errors.Is(ops[0].Err, ErrClosed) {
		t.Fatalf("batch op after close: %v", ops[0].Err)
	}
	if err := s.ForEach(func(k, v []byte) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("ForEach after close: %v", err)
	}
	if _, err := s.Fsck(false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Fsck after close: %v", err)
	}
	if s.TryMerge([]byte("k")) {
		t.Fatal("TryMerge succeeded after close")
	}
	// The scrubber was stopped by Close; Stop again is idempotent and
	// returns the merged tally without hanging.
	_ = scrub.Stop()
	s.Close()
}

func TestScrubberMergesShardStats(t *testing.T) {
	db, err := Open(Options{
		Platform: smallPlatform(),
		Shards:   2,
		Index:    IndexOptions{Checksums: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	for i := uint64(0); i < 4000; i++ {
		if err := s.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sc, err := db.StartScrub(ScrubOptions{Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc.Wait()
	st := sc.Stop()
	if st.Segments == 0 {
		t.Fatalf("merged scrub stats empty: %+v", st)
	}
	s.Close()
}

func TestRecoverGeometryMismatch(t *testing.T) {
	// Requesting checksum maintenance on a device that was never
	// sealed is a geometry mismatch, not a silent downgrade.
	db, err := Open(Options{Platform: smallPlatform(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if err := s.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	platform := db.Platform()
	db.Crash()
	_, err = Recover(platform, Options{Index: IndexOptions{Checksums: true}})
	if !errors.Is(err, ErrGeometry) {
		t.Fatalf("checksum mismatch: got %v, want ErrGeometry", err)
	}
	var ge *GeometryError
	if !errors.As(err, &ge) || ge.Field != "checksums" {
		t.Fatalf("geometry error detail: %v", err)
	}

	// A corrupted geometry stamp (here: a different segment size) is
	// rejected before any structural state is trusted.
	db2, err := Recover(platform, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2 := db2.Platform()
	c := p2.NewCtx()
	const rootGeomWord = 3 // core's rootGeom slot
	geom := p2.Load64(c, alloc.RootAddr(rootGeomWord))
	p2.Store64(c, alloc.RootAddr(rootGeomWord), geom+(1<<32))
	db2.Crash()
	_, err = Recover(p2, Options{})
	if !errors.Is(err, ErrGeometry) {
		t.Fatalf("corrupt stamp: got %v, want ErrGeometry", err)
	}
	if !errors.As(err, &ge) || ge.Field != "segment-size" {
		t.Fatalf("corrupt stamp detail: %v", err)
	}
}

// shardedIndex adapts a multi-shard DB to ixapi.Index so the full
// conformance suite runs against the sharded public API.
type shardedIndex struct{ db *DB }

func (x shardedIndex) Name() string            { return "spash-sharded" }
func (x shardedIndex) Len() int                { return x.db.Len() }
func (x shardedIndex) LoadFactor() float64     { return x.db.LoadFactor() }
func (x shardedIndex) Pool() *pmem.Pool        { return x.db.Platforms()[0] }
func (x shardedIndex) Group() *vsync.Group     { return x.db.Groups()[0] }
func (x shardedIndex) NewWorker() ixapi.Worker { return &shardedWorker{s: x.db.Session()} }

type shardedWorker struct{ s *Session }

func (w *shardedWorker) Insert(key, val []byte) error { return w.s.Insert(key, val) }
func (w *shardedWorker) Search(key, dst []byte) ([]byte, bool, error) {
	return w.s.Get(key, dst)
}
func (w *shardedWorker) Update(key, val []byte) (bool, error) { return w.s.Update(key, val) }
func (w *shardedWorker) Delete(key []byte) (bool, error)      { return w.s.Delete(key) }
func (w *shardedWorker) Ctx() *pmem.Ctx                       { return w.s.Ctx() }
func (w *shardedWorker) Close()                               { w.s.Close() }

func TestShardedConformance(t *testing.T) {
	indextest.Run(t, func(platform pmem.Config) (ixapi.Index, error) {
		db, err := Open(Options{Platform: platform, Shards: 4})
		if err != nil {
			return nil, err
		}
		return shardedIndex{db: db}, nil
	})
}

// Shards=1 must keep LoadFactor bit-identical to the direct index
// computation (the pre-refactor behaviour).
func TestSingleShardLoadFactorUnchanged(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()
	for i := uint64(0); i < 5000; i++ {
		if err := s.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := db.LoadFactor(), db.Index().LoadFactor(); got != want {
		t.Fatalf("LoadFactor %v != index %v", got, want)
	}
}

func TestShardedObsSnapshotAggregates(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()
	for i := uint64(0); i < 2000; i++ {
		if err := s.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	per := db.ObsSnapshots()
	if len(per) != 2 {
		t.Fatalf("per-shard snapshots: %d", len(per))
	}
	agg := db.ObsSnapshot()
	if want := per[0].Mem.XPLineWrites + per[1].Mem.XPLineWrites; agg.Mem.XPLineWrites != want {
		t.Fatalf("aggregate XPLineWrites %d != %d", agg.Mem.XPLineWrites, want)
	}
	if agg.Mem.XPLineWrites == 0 {
		t.Fatal("no media writes recorded")
	}
}

// Keys must never cross shards: a key routed to shard i at insert time
// must be found by a fresh session (same routing) and by Fsck's
// per-shard placement walk.
func TestShardRoutingStable(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	for i := uint64(0); i < 3000; i++ {
		if err := s.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2 := db.Session()
	defer s2.Close()
	for i := uint64(0); i < 3000; i++ {
		if _, ok, err := s2.Get(key64(i), nil); !ok || err != nil {
			t.Fatalf("key %d: %v %v", i, ok, err)
		}
	}
	rep, err := s2.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck found faults: %+v", rep)
	}
	if rep.Segments == 0 {
		t.Fatal("merged fsck report walked no segments")
	}
	var segs int64
	for _, ix := range db.Indexes() {
		segs += ix.Stats().Segments
	}
	if int64(rep.Segments) != segs {
		t.Fatalf("fsck walked %d segments, shards hold %d", rep.Segments, segs)
	}
}

// TestShardedTryShrinkConcurrent guards the fix for DB.TryShrink
// reusing the shards' bootstrap contexts: pmem.Ctx is per-worker
// state, so two concurrent TryShrink callers (or TryShrink racing
// other maintenance on Unit.Ctx) would share one virtual clock.
// TryShrink now takes a fresh context per shard per call; this test
// fails under -race with the old implementation.
func TestShardedTryShrinkConcurrent(t *testing.T) {
	db, err := Open(Options{Platform: smallPlatform(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()
	const n = 4000
	for i := uint64(0); i < n; i++ {
		if err := s.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Deleting most keys gives TryShrink real shrink work to race on.
	for i := uint64(0); i < n-8; i++ {
		if _, err := s.Delete(key64(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				db.TryShrink()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s2 := db.Session()
		defer s2.Close()
		for i := uint64(0); i < 2000; i++ {
			if err := s2.Insert(key64(n+i), key64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	got, found, err := s.Get(key64(n-1), nil)
	if err != nil || !found || string(got) != string(key64(n-1)) {
		t.Fatalf("surviving key lost after concurrent shrink: found=%v err=%v", found, err)
	}
}
