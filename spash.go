// Package spash is a Go reproduction of Spash, the scalable persistent
// hash index for platforms with a persistent CPU cache (eADR) from
// "Exploiting Persistent CPU Cache for Scalable Persistent Hash Index"
// (ICDE 2024).
//
// Because Go exposes neither persistent memory, cacheline flush
// control, nor hardware transactional memory, the index runs on a
// simulated platform: a PM device with an XPLine-granular media model
// and a set-associative CPU cache (package internal/pmem), and an
// RTM-style software transactional memory (package internal/htm).
// The simulation reproduces the hardware behaviours the paper's design
// exploits — write amplification from random cacheline eviction,
// bandwidth savings from cache-absorbed hot writes, eADR crash
// semantics, HTM conflict/capacity aborts — and meters every PM access
// so the paper's evaluation can be regenerated (see EXPERIMENTS.md).
//
// # Sharding
//
// A DB is a router over N self-contained shards (Options.Shards; the
// default is GOMAXPROCS). Each shard owns a private simulated device,
// allocator, index, and HTM domain — no version clock, commit token,
// or allocator arena is shared — so cross-shard coordination cost is
// exactly zero, the property the paper's 224-thread scaling rests on.
// Keys route by the LOW bits of their 64-bit hash; each shard's
// extendible directory resolves with the HIGH bits, so the in-shard
// distribution stays uniform. Shards = 1 preserves the exact
// single-index behaviour of earlier versions.
//
// # Quick start
//
//	db, err := spash.Open(spash.Options{})
//	if err != nil { ... }
//	defer db.Close()
//
//	s := db.Session()        // one per worker goroutine
//	defer s.Close()
//	s.Insert([]byte("key"), []byte("value"))
//	val, ok, err := s.Get([]byte("key"), nil)
//
// # Crash recovery
//
// The simulated platform can lose power at any quiescent point:
//
//	imgs := db.Platforms()   // the simulated PM devices, one per shard
//	db.Crash()               // power failure (eADR: nothing is lost)
//	db2, err := spash.RecoverAll(imgs, spash.Options{})
//
// (With Shards: 1, db.Platform() and spash.Recover reopen the single
// device.) Under the default eADR mode every completed operation
// survives; in ADR mode (Options.Platform.Mode = spash.ADR) unflushed
// data rolls back, demonstrating the gap the paper closes.
package spash

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spash/internal/core"
	"spash/internal/obs"
	"spash/internal/pmem"
	"spash/internal/shard"
	"spash/internal/vsync"
)

// Re-exported limits and policy types.
const (
	// MaxKVLen bounds key and value lengths.
	MaxKVLen = core.MaxKVLen
	// SegmentSize is the size of one fine-grained hash segment (one
	// XPLine, the PM media's internal access granularity).
	SegmentSize = core.SegmentSize
)

// Concurrency-control modes (Fig 12c variants).
const (
	ModeHTM       = core.ModeHTM
	ModeWriteLock = core.ModeWriteLock
	ModeRWLock    = core.ModeRWLock
)

// Update flush policies (Table I, Fig 12a variants).
const (
	UpdateAdaptive    = core.UpdateAdaptive
	UpdateAlwaysFlush = core.UpdateAlwaysFlush
	UpdateNeverFlush  = core.UpdateNeverFlush
	UpdateOracle      = core.UpdateOracle
)

// Insertion placement policies (§III-C, Fig 12b variants).
const (
	InsertCompactedFlush = core.InsertCompactedFlush
	InsertNoCompact      = core.InsertNoCompact
	InsertCompactNoFlush = core.InsertCompactNoFlush
)

// IndexOptions configures the index (alias of the core configuration
// so callers never import internal packages).
type IndexOptions = core.Config

// PlatformOptions configures the simulated PM device.
type PlatformOptions = pmem.Config

// Persistence-domain modes for PlatformOptions.Mode.
const (
	EADR = pmem.EADR
	ADR  = pmem.ADR
)

// DefaultPlatform returns the default simulated device configuration
// (256 MB pool, 8 MB cache, eADR).
func DefaultPlatform() PlatformOptions { return pmem.DefaultConfig() }

// Corruption-tolerance re-exports: typed errors the read path returns
// on damaged media, the offline repair report, and the online scrubber
// knobs. Callers match with errors.Is/As and never import internal
// packages.
var (
	// ErrCorrupted matches (errors.Is) every CorruptionError.
	ErrCorrupted = core.ErrCorrupted
	// ErrPoisoned matches (errors.Is) reads of poisoned XPLines.
	ErrPoisoned = pmem.ErrPoisoned
	// ErrGeometry matches (errors.Is) every GeometryError returned by
	// Recover/RecoverAll when the requested Options.Index disagrees
	// with the geometry stamped on the device.
	ErrGeometry = core.ErrGeometry
	// ErrClosed is returned by Session operations (and reported in
	// batch results) after DB.Close.
	ErrClosed = errors.New("spash: database is closed")
)

type (
	// CorruptionError is the typed error returned when a read touches
	// a damaged segment (checksum mismatch, CRC-failing record, or
	// poisoned media). Extract with errors.As.
	CorruptionError = core.CorruptionError
	// GeometryError reports which on-device geometry parameter
	// (segment size, slots per segment, format, checksum mode)
	// conflicts with the recovering configuration. Extract with
	// errors.As.
	GeometryError = core.GeometryError
	// FsckReport is the result of Session.Fsck.
	FsckReport = core.FsckReport
	// ScrubOptions configures DB.StartScrub.
	ScrubOptions = core.ScrubOptions
	// ScrubStats is the scrubber's final tally.
	ScrubStats = core.ScrubStats
)

// DescribeError renders err for operator-facing diagnostics: typed
// media corruption is expanded with the damaged location and the
// repair action; anything else formats as-is.
func DescribeError(err error) string {
	var ce *core.CorruptionError
	if errors.As(err, &ce) {
		loc := fmt.Sprintf("segment %#x", ce.Seg)
		if ce.Bucket >= 0 {
			loc = fmt.Sprintf("%s bucket %d", loc, ce.Bucket)
		}
		return fmt.Sprintf("media corruption in %s: %v (repair: spash-fsck -repair, or online via StartScrub)", loc, ce.Cause)
	}
	var ae pmem.AccessError
	if errors.As(err, &ae) && ae.Poisoned {
		return fmt.Sprintf("uncorrectable media error: poisoned XPLine at %#x (repair: spash-fsck -repair)", ae.Addr)
	}
	var re *ReplicationError
	if errors.As(err, &re) {
		switch {
		case errors.Is(err, ErrNotPrimary):
			return fmt.Sprintf("%v (this node is a replica or was fenced by a newer epoch; retry against the current primary)", re)
		case errors.Is(err, ErrNeedsReseed):
			return fmt.Sprintf("%v (replica state rolled back past the replayable horizon; the primary's auto-resync re-seeds it via FullSync)", re)
		case errors.Is(err, ErrReplicaLag):
			return fmt.Sprintf("%v (drain the apply stream, then retry the promotion)", re)
		case errors.Is(err, ErrRetryExhausted):
			return fmt.Sprintf("%v (circuit breaker open, degraded-async shipping; writes continue locally and the prober drains the spill queue on recovery)", re)
		case errors.Is(err, ErrTransportTimeout):
			return fmt.Sprintf("%v (transport missed its per-frame deadline; the retry policy backs off and re-ships)", re)
		}
		return re.Error()
	}
	return err.Error()
}

// Options configures a DB.
type Options struct {
	// Platform configures the simulated PM device; the zero value is
	// pmem.DefaultConfig (256 MB pool, 8 MB cache, eADR). With more
	// than one shard the pool capacity is divided evenly among the
	// shards (same total data budget); each shard keeps a full-size
	// cache, modelling one socket per shard — every socket of the
	// paper's testbed brings its own LLC and DIMMs.
	Platform pmem.Config
	// Index configures the Spash index itself; the zero value matches
	// the paper's defaults (HTM concurrency, adaptive updates,
	// compacted-flush insertion, pipeline depth 4, 8K-entry hotspot
	// detector). Every shard runs the same configuration.
	Index core.Config
	// Shards is the number of independent partitions. 0 means
	// GOMAXPROCS; 1 preserves the exact single-index behaviour of
	// earlier versions (Platform(), Index(), and spash.Recover work
	// only in that configuration).
	Shards int
	// Replica opens the DB in the replica role: client writes fail
	// typed with ErrNotPrimary (reads stay available) and only the
	// replication apply path (ApplierSession) may mutate it, until
	// Promote. See replication.go and internal/repl.
	Replica bool
	// Health sets the watermarks DB.Health evaluates the live
	// snapshot against; zero fields take the obs defaults (quarantine
	// ≥1 degraded, replica lag ≥1 record degraded, HTM abort rate ≥1
	// per commit degraded, any fsck-unrecoverable segment critical).
	Health obs.HealthWatermarks
}

// shardCount resolves the Shards option.
func (o Options) shardCount() int {
	if o.Shards == 0 {
		return shard.DefaultShards()
	}
	return o.Shards
}

// DB is a Spash index partitioned over Options.Shards self-contained
// shards, together with the simulated platforms they live on. All
// methods are safe for concurrent use; per-worker state lives in
// Sessions.
type DB struct {
	units  []*shard.Unit
	closed atomic.Bool
	// replica is the current replication role (replication.go): true
	// fences every non-applier Session write with ErrNotPrimary.
	replica atomic.Bool
	// health holds the watermarks DB.Health evaluates against.
	health obs.HealthWatermarks

	mu        sync.Mutex
	scrubbers map[*Scrubber]struct{}
}

// Open creates a fresh index on newly provisioned simulated PM
// devices, one per shard, in parallel.
func Open(opts Options) (*DB, error) {
	n := opts.shardCount()
	units, err := shard.OpenAll(n, opts.Platform, opts.Index)
	if err != nil {
		return nil, fmt.Errorf("spash: %w", err)
	}
	return newDB(units, opts), nil
}

func newDB(units []*shard.Unit, opts Options) *DB {
	db := &DB{units: units, health: opts.Health,
		scrubbers: make(map[*Scrubber]struct{})}
	db.replica.Store(opts.Replica)
	return db
}

// Recover reopens a single-shard index on an existing device, e.g.
// after Crash on a DB opened with Shards: 1. The volatile directory,
// allocator free lists and counters are rebuilt from persistent state.
// Options.Index is validated against the geometry stamped on the
// device; a mismatch returns a GeometryError (errors.Is ErrGeometry).
// For multi-shard databases use RecoverAll.
func Recover(platform *pmem.Pool, opts Options) (*DB, error) {
	if platform == nil {
		return nil, errors.New("spash: nil platform")
	}
	return RecoverAll([]*pmem.Pool{platform}, opts)
}

// RecoverAll reopens an index on the existing devices of a crashed
// multi-shard DB, one shard per device, recovered in parallel (first
// error in shard order wins). The slice must be in the original shard
// order — Platforms() returns it that way — because key routing
// depends on the position. Options.Shards is ignored; the device
// count is the shard count.
func RecoverAll(platforms []*pmem.Pool, opts Options) (*DB, error) {
	units, err := shard.RecoverAll(platforms, opts.Index)
	if err != nil {
		if errors.Is(err, ErrGeometry) {
			return nil, fmt.Errorf("spash: %w", err)
		}
		return nil, fmt.Errorf("spash: recovering index: %w", err)
	}
	return newDB(units, opts), nil
}

// Shards returns the number of partitions.
func (db *DB) Shards() int { return len(db.units) }

// Platform returns the simulated PM device (for stats, crash
// injection, and Recover) of a single-shard DB. It panics on a
// multi-shard DB — use Platforms there.
func (db *DB) Platform() *pmem.Pool {
	if len(db.units) != 1 {
		panic(fmt.Sprintf("spash: Platform() on a %d-shard DB; use Platforms()", len(db.units)))
	}
	return db.units[0].Pool
}

// Platforms returns every shard's simulated PM device, in shard order
// (the order RecoverAll requires).
func (db *DB) Platforms() []*pmem.Pool {
	out := make([]*pmem.Pool, len(db.units))
	for i, u := range db.units {
		out[i] = u.Pool
	}
	return out
}

// Index returns the underlying core index (advanced use: ablation
// toggles, maintenance operations) of a single-shard DB. It panics on
// a multi-shard DB — use Indexes there.
func (db *DB) Index() *core.Index {
	if len(db.units) != 1 {
		panic(fmt.Sprintf("spash: Index() on a %d-shard DB; use Indexes()", len(db.units)))
	}
	return db.units[0].Ix
}

// Indexes returns every shard's core index, in shard order.
func (db *DB) Indexes() []*core.Index {
	out := make([]*core.Index, len(db.units))
	for i, u := range db.units {
		out[i] = u.Ix
	}
	return out
}

// Crash simulates a simultaneous power failure across every shard's
// device. With eADR (default) the persistent CPU cache is flushed by
// the reserve energy and nothing is lost; with ADR all unflushed
// cachelines roll back. The DB must be quiescent (stop scrubbers
// first); after Crash the DB is unusable — call RecoverAll on
// Platforms(). Returns the total number of lost (rolled-back)
// cachelines across all shards; the per-shard breakdown is recorded
// in each device's stats (Stats().Shards[i].Memory.CrashLostLines,
// also visible as ObsSnapshots()[i].Mem.CrashLostLines), so failover
// drills can assert which shard rolled back.
func (db *DB) Crash() int {
	lost := 0
	for _, u := range db.units {
		lost += u.Pool.Crash()
	}
	return lost
}

// Close stops every running Scrubber and invalidates outstanding
// Sessions: any operation on them afterwards fails with ErrClosed.
// Close is idempotent; the simulated devices (and the data on them)
// remain available via Platforms().
func (db *DB) Close() {
	if !db.closed.CompareAndSwap(false, true) {
		return
	}
	db.mu.Lock()
	running := make([]*Scrubber, 0, len(db.scrubbers))
	for s := range db.scrubbers {
		running = append(running, s)
	}
	db.mu.Unlock()
	for _, s := range running {
		s.Stop()
	}
}

// Len returns the number of live key-value pairs across all shards.
func (db *DB) Len() int {
	n := 0
	for _, u := range db.units {
		n += u.Ix.Len()
	}
	return n
}

// LoadFactor returns entries / slot capacity — the memory-utilisation
// metric of the paper's Fig 9 — aggregated over all shards.
func (db *DB) LoadFactor() float64 {
	if len(db.units) == 1 {
		return db.units[0].Ix.LoadFactor()
	}
	var entries, segs int64
	for _, u := range db.units {
		st := u.Ix.Stats()
		entries += st.Entries
		segs += st.Segments
	}
	if segs == 0 {
		return 0
	}
	return float64(entries) / float64(segs*core.SlotsPerSegment)
}

// ShardStats is one shard's slice of the database counters.
type ShardStats struct {
	Index  core.Stats
	Memory pmem.Stats
}

// Stats bundles index counters with platform memory-event counters.
// Index and Memory are the database-wide aggregates; Shards carries
// the per-shard breakdown (length DB.Shards, in shard order).
type Stats struct {
	Index  core.Stats
	Memory pmem.Stats
	Shards []ShardStats
}

// Stats returns a snapshot of index and platform counters, aggregated
// and per shard.
func (db *DB) Stats() Stats {
	out := Stats{Shards: make([]ShardStats, len(db.units))}
	for i, u := range db.units {
		s := ShardStats{Index: u.Ix.Stats(), Memory: u.Pool.Stats()}
		out.Shards[i] = s
		out.Index = out.Index.Add(s.Index)
		out.Memory = out.Memory.Add(s.Memory)
	}
	return out
}

// ObsSnapshot captures the unified observability snapshot (pool memory
// events, HTM outcomes, allocator occupancy, structural counters)
// aggregated across every shard. Use ObsSnapshots for the per-shard
// breakdown.
func (db *DB) ObsSnapshot() obs.Snapshot {
	agg := db.units[0].Ix.ObsSnapshot()
	for _, u := range db.units[1:] {
		agg = agg.Add(u.Ix.ObsSnapshot())
	}
	return agg
}

// ObsSnapshots captures one observability snapshot per shard, in shard
// order.
func (db *DB) ObsSnapshots() []obs.Snapshot {
	out := make([]obs.Snapshot, len(db.units))
	for i, u := range db.units {
		out[i] = u.Ix.ObsSnapshot()
	}
	return out
}

// SlowOps returns the n slowest sampled operations retained across
// every shard's slow-op log, slowest first, each with its per-phase
// latency breakdown, op kind, key hash, shard and HTM abort count.
// n <= 0 returns everything retained. Empty when span sampling is
// disabled (core.Config.SpanSample < 0 or DisableObs).
func (db *DB) SlowOps(n int) []obs.SlowOp {
	lists := make([][]obs.SlowOp, 0, len(db.units))
	for _, u := range db.units {
		lists = append(lists, u.Ix.Obs().SlowOps(0))
	}
	return obs.MergeSlowOps(lists, n)
}

// Health evaluates the live aggregate snapshot against the DB's
// watermarks (Options.Health): quarantined segments, replication lag,
// HTM abort rate, fsck damage and scrub coverage reduce to
// OK/DEGRADED/CRITICAL with reasons.
func (db *DB) Health() obs.Health {
	return obs.EvalHealth(db.ObsSnapshot(), db.health)
}

// ExportSources bundles the DB's export feeds for obs.SetSources: the
// aggregate and per-shard snapshots, the merged slow-op log, the
// health verdict, and shard 0's registry (trace endpoint). Typically:
//
//	obs.SetSources(db.ExportSources())
//	obs.Serve(addr)
func (db *DB) ExportSources() obs.Sources {
	return obs.Sources{
		Snapshot: db.ObsSnapshot,
		Shards:   db.ObsSnapshots,
		SlowOps:  db.SlowOps,
		Health:   db.Health,
		Registry: db.units[0].Ix.Obs(),
	}
}

// Obs returns shard 0's metrics registry. Layers above the index
// (internal/server) record their own counters, gauges, and histograms
// here so they flow through the same snapshot aggregation and export
// feeds as the engine's.
func (db *DB) Obs() *obs.Registry {
	return db.units[0].Ix.Obs()
}

// Group exposes the virtual-time serialisation group (benchmarking) of
// a single-shard DB. It panics on a multi-shard DB — use Groups there
// (each shard serialises independently; the harness bounds elapsed
// time by the hottest group).
func (db *DB) Group() *vsync.Group {
	if len(db.units) != 1 {
		panic(fmt.Sprintf("spash: Group() on a %d-shard DB; use Groups()", len(db.units)))
	}
	return db.units[0].Ix.Group()
}

// Groups returns every shard's serialisation group, in shard order.
func (db *DB) Groups() []*vsync.Group {
	out := make([]*vsync.Group, len(db.units))
	for i, u := range db.units {
		out[i] = u.Ix.Group()
	}
	return out
}

// Scrubber is a running online scrub across every shard (one
// background scrubber per shard). Stop halts all of them and returns
// the merged tally.
type Scrubber struct {
	db    *DB
	subs  []*core.Scrubber
	once  sync.Once
	stats ScrubStats
}

// Stop halts the scrub on every shard and returns the merged stats.
// Stop is idempotent.
func (s *Scrubber) Stop() ScrubStats {
	s.once.Do(func() {
		for _, sub := range s.subs {
			s.stats = s.stats.Add(sub.Stop())
		}
		s.db.mu.Lock()
		delete(s.db.scrubbers, s)
		s.db.mu.Unlock()
	})
	return s.stats
}

// Wait blocks until every shard's bounded scrub (Passes > 0) has
// completed its walks; Stop is still required to collect the merged
// stats. Without it, a Stop issued right after StartScrub can abort
// the first pass before any segment was verified.
func (s *Scrubber) Wait() {
	for _, sub := range s.subs {
		sub.Wait()
	}
}

// StartScrub launches the online background scrubber on every shard:
// each re-verifies its segments incrementally through the optimistic
// read protocol (never blocking writers) and, with
// ScrubOptions.Repair, quarantines damaged ones as it finds them.
// DB.Close stops any scrubbers still running; stop them explicitly
// before Crash. After Close, StartScrub returns ErrClosed.
//
// The start-and-register sequence runs under the registration lock:
// a Close racing with StartScrub either observes the registration
// (and stops the scrubber) or wins the race first (and StartScrub
// returns ErrClosed without launching anything) — a scrub goroutine
// can never outlive Close unobserved.
func (db *DB) StartScrub(opt ScrubOptions) (*Scrubber, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	s := &Scrubber{db: db, subs: make([]*core.Scrubber, len(db.units))}
	for i, u := range db.units {
		s.subs[i] = u.Ix.StartScrub(opt)
	}
	db.scrubbers[s] = struct{}{}
	return s, nil
}

// TryShrink halves each shard's directory where every segment's local
// depth allows it (maintenance; see core.Index.TryShrink), reporting
// whether any shard shrank.
//
// Each shard gets a fresh context for the call: TryShrink runs on the
// caller's goroutine, and reusing the shard's bootstrap context here
// would share one virtual clock between concurrent callers (and with
// any maintenance still using it), corrupting the per-worker timing
// contract that pmem.Ctx enforces.
func (db *DB) TryShrink() bool {
	shrank := false
	for _, u := range db.units {
		c := u.Pool.NewCtx()
		if u.Ix.TryShrink(c) {
			shrank = true
		}
		c.Release()
	}
	return shrank
}

// Session is a per-worker handle: it owns the worker's virtual clock
// and, per shard, the allocator caches (including the compacted-flush
// chunk) and pipeline state. Sessions are not safe for concurrent use;
// create one per goroutine.
type Session struct {
	db *DB
	hs []*core.Handle
	// applier exempts the session from the replica write fence (see
	// DB.ApplierSession; replication apply only).
	applier bool
}

// Session returns a new worker session.
func (db *DB) Session() *Session {
	hs := make([]*core.Handle, len(db.units))
	for i, u := range db.units {
		hs[i] = u.Ix.NewHandle(nil)
	}
	return &Session{db: db, hs: hs}
}

// Close returns the session's cached resources to the DB.
func (s *Session) Close() {
	for _, h := range s.hs {
		h.Close()
	}
}

// Ctx returns the session's pmem context (virtual clock + counters)
// on the first shard; ShardCtx addresses the others.
func (s *Session) Ctx() *pmem.Ctx { return s.hs[0].Ctx() }

// ShardCtx returns the session's pmem context on shard i.
func (s *Session) ShardCtx(i int) *pmem.Ctx { return s.hs[i].Ctx() }

// shardOfKey returns the shard index owning key.
func shardOfKey(key []byte, n int) int {
	return shard.Of(core.KeyHash(key), n)
}

// ShardOf returns the shard a key routes to in an n-shard DB (the
// same low-bit hash routing Sessions use). Exported for the
// replication layer and harnesses that attribute keys to shards.
func ShardOf(key []byte, n int) int { return shardOfKey(key, n) }

// route returns the handle owning key.
func (s *Session) route(key []byte) *core.Handle {
	return s.hs[shardOfKey(key, len(s.hs))]
}

// Insert stores key→value, replacing any existing value. On a
// replica-role DB it fails with a *ReplicationError wrapping
// ErrNotPrimary.
func (s *Session) Insert(key, value []byte) error {
	if err := s.writeGate("insert", key); err != nil {
		return err
	}
	return s.route(key).Insert(key, value)
}

// Get looks key up; the value is appended to dst (which may be nil).
func (s *Session) Get(key, dst []byte) (value []byte, found bool, err error) {
	if s.db.closed.Load() {
		return nil, false, ErrClosed
	}
	return s.route(key).Search(key, dst)
}

// Update replaces the value of an existing key (adaptive in-place
// update). Returns false when the key is absent; on a replica-role DB
// it fails with a *ReplicationError wrapping ErrNotPrimary.
func (s *Session) Update(key, value []byte) (bool, error) {
	if err := s.writeGate("update", key); err != nil {
		return false, err
	}
	return s.route(key).Update(key, value)
}

// Delete removes key, reporting whether it was present. On a
// replica-role DB it fails with a *ReplicationError wrapping
// ErrNotPrimary.
func (s *Session) Delete(key []byte) (bool, error) {
	if err := s.writeGate("delete", key); err != nil {
		return false, err
	}
	return s.route(key).Delete(key)
}

// Batch types re-exported for pipelined execution (§III-D).
type (
	// Op is one request of a pipelined batch.
	Op = core.BatchOp
	// OpKind selects the operation of a batch request.
	OpKind = core.OpKind
)

// Batch operation kinds.
const (
	OpGet    = core.OpSearch
	OpUpdate = core.OpUpdate
	OpInsert = core.OpInsert
	OpDelete = core.OpDelete
)

// ExecBatch executes ops with pipelined PM reads: the preparation of
// request i+PipelineDepth-1 (directory lookup + asynchronous bucket
// prefetch) is issued before request i executes, overlapping PM read
// latencies. On a multi-shard DB the batch is partitioned by key and
// each shard's sub-batch runs through that shard's pipeline; results
// are positional, so callers are unaffected.
func (s *Session) ExecBatch(ops []Op) {
	if s.db.closed.Load() {
		for i := range ops {
			ops[i].Err = ErrClosed
		}
		return
	}
	if s.db.replica.Load() && !s.applier {
		// Replica role: the write requests fail typed, the reads of
		// the batch still execute (positionally, through a filtered
		// sub-batch).
		var reads []Op
		var idx []int
		for i := range ops {
			if ops[i].Kind == OpGet {
				reads = append(reads, ops[i])
				idx = append(idx, i)
				continue
			}
			ops[i].Err = &ReplicationError{Op: "batch write",
				Shard: shardOfKey(ops[i].Key, len(s.hs)),
				Epoch: s.db.Epoch(), Err: ErrNotPrimary}
		}
		if len(reads) > 0 {
			shard.SplitBatch(s.hs, reads)
			for j, i := range idx {
				ops[i] = reads[j]
			}
		}
		return
	}
	shard.SplitBatch(s.hs, ops)
}

// TryMerge attempts to merge the (empty) segment responsible for key
// with its buddy (maintenance after bulk deletes). On a replica-role
// DB it reports false without merging (structural maintenance arrives
// through the apply stream).
func (s *Session) TryMerge(key []byte) bool {
	if s.db.closed.Load() || (s.db.replica.Load() && !s.applier) {
		return false
	}
	return s.route(key).TryMerge(key)
}

// ForEach visits every live key-value pair once, shard by shard
// (segment-atomic, not a global snapshot; see core.Index.ForEach).
// The byte slices are only valid during the callback.
func (s *Session) ForEach(fn func(key, value []byte) bool) error {
	if s.db.closed.Load() {
		return ErrClosed
	}
	stopped := false
	for _, h := range s.hs {
		if stopped {
			break
		}
		err := h.Index().ForEach(h, func(k, v []byte) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Fsck walks each shard's persistent registry, verifies every live
// segment (checksum seals, per-record CRCs, routing, poison) and —
// with repair — quarantines and rebuilds the damaged ones, reporting
// salvaged and lost keys in one merged report. The DB should be
// quiescent; FsckReport.ExitCode gives the spash-fsck exit convention
// (0 clean / 1 repaired / 2 unrecoverable).
func (s *Session) Fsck(repair bool) (*FsckReport, error) {
	if s.db.closed.Load() {
		return nil, ErrClosed
	}
	var rep FsckReport
	for i, h := range s.hs {
		r, err := h.Fsck(repair)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		// Stamp the owning shard so replica read-repair can fetch
		// each repair's authoritative range from the right peer shard.
		for j := range r.Faults {
			r.Faults[j].Shard = i
		}
		for j := range r.Repairs {
			r.Repairs[j].Shard = i
		}
		for j := range r.Failed {
			r.Failed[j].Shard = i
		}
		rep.Merge(r)
	}
	return &rep, nil
}
