// Package spash is a Go reproduction of Spash, the scalable persistent
// hash index for platforms with a persistent CPU cache (eADR) from
// "Exploiting Persistent CPU Cache for Scalable Persistent Hash Index"
// (ICDE 2024).
//
// Because Go exposes neither persistent memory, cacheline flush
// control, nor hardware transactional memory, the index runs on a
// simulated platform: a PM device with an XPLine-granular media model
// and a set-associative CPU cache (package internal/pmem), and an
// RTM-style software transactional memory (package internal/htm).
// The simulation reproduces the hardware behaviours the paper's design
// exploits — write amplification from random cacheline eviction,
// bandwidth savings from cache-absorbed hot writes, eADR crash
// semantics, HTM conflict/capacity aborts — and meters every PM access
// so the paper's evaluation can be regenerated (see EXPERIMENTS.md).
//
// # Quick start
//
//	db, err := spash.Open(spash.Options{})
//	if err != nil { ... }
//	defer db.Close()
//
//	s := db.Session()        // one per worker goroutine
//	defer s.Close()
//	s.Insert([]byte("key"), []byte("value"))
//	val, ok, err := s.Get([]byte("key"), nil)
//
// # Crash recovery
//
// The simulated platform can lose power at any quiescent point:
//
//	img := db.Platform()     // the simulated PM device
//	db.Crash()               // power failure (eADR: nothing is lost)
//	db2, err := spash.Recover(img, spash.Options{})
//
// Under the default eADR mode every completed operation survives; in
// ADR mode (Options.Platform.Mode = spash.ADR) unflushed data rolls
// back, demonstrating the gap the paper closes.
package spash

import (
	"errors"
	"fmt"

	"spash/internal/alloc"
	"spash/internal/core"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

// Re-exported limits and policy types.
const (
	// MaxKVLen bounds key and value lengths.
	MaxKVLen = core.MaxKVLen
	// SegmentSize is the size of one fine-grained hash segment (one
	// XPLine, the PM media's internal access granularity).
	SegmentSize = core.SegmentSize
)

// Concurrency-control modes (Fig 12c variants).
const (
	ModeHTM       = core.ModeHTM
	ModeWriteLock = core.ModeWriteLock
	ModeRWLock    = core.ModeRWLock
)

// Update flush policies (Table I, Fig 12a variants).
const (
	UpdateAdaptive    = core.UpdateAdaptive
	UpdateAlwaysFlush = core.UpdateAlwaysFlush
	UpdateNeverFlush  = core.UpdateNeverFlush
	UpdateOracle      = core.UpdateOracle
)

// Insertion placement policies (§III-C, Fig 12b variants).
const (
	InsertCompactedFlush = core.InsertCompactedFlush
	InsertNoCompact      = core.InsertNoCompact
	InsertCompactNoFlush = core.InsertCompactNoFlush
)

// IndexOptions configures the index (alias of the core configuration
// so callers never import internal packages).
type IndexOptions = core.Config

// PlatformOptions configures the simulated PM device.
type PlatformOptions = pmem.Config

// Persistence-domain modes for PlatformOptions.Mode.
const (
	EADR = pmem.EADR
	ADR  = pmem.ADR
)

// DefaultPlatform returns the default simulated device configuration
// (256 MB pool, 8 MB cache, eADR).
func DefaultPlatform() PlatformOptions { return pmem.DefaultConfig() }

// Corruption-tolerance re-exports: typed errors the read path returns
// on damaged media, the offline repair report, and the online scrubber
// knobs. Callers match with errors.Is/As and never import internal
// packages.
var (
	// ErrCorrupted matches (errors.Is) every CorruptionError.
	ErrCorrupted = core.ErrCorrupted
	// ErrPoisoned matches (errors.Is) reads of poisoned XPLines.
	ErrPoisoned = pmem.ErrPoisoned
)

type (
	// CorruptionError is the typed error returned when a read touches
	// a damaged segment (checksum mismatch, CRC-failing record, or
	// poisoned media). Extract with errors.As.
	CorruptionError = core.CorruptionError
	// FsckReport is the result of Session.Fsck.
	FsckReport = core.FsckReport
	// ScrubOptions configures DB.StartScrub.
	ScrubOptions = core.ScrubOptions
	// ScrubStats is the scrubber's final tally.
	ScrubStats = core.ScrubStats
)

// DescribeError renders err for operator-facing diagnostics: typed
// media corruption is expanded with the damaged location and the
// repair action; anything else formats as-is.
func DescribeError(err error) string {
	var ce *core.CorruptionError
	if errors.As(err, &ce) {
		loc := fmt.Sprintf("segment %#x", ce.Seg)
		if ce.Bucket >= 0 {
			loc = fmt.Sprintf("%s bucket %d", loc, ce.Bucket)
		}
		return fmt.Sprintf("media corruption in %s: %v (repair: spash-fsck -repair, or online via StartScrub)", loc, ce.Cause)
	}
	var ae pmem.AccessError
	if errors.As(err, &ae) && ae.Poisoned {
		return fmt.Sprintf("uncorrectable media error: poisoned XPLine at %#x (repair: spash-fsck -repair)", ae.Addr)
	}
	return err.Error()
}

// Options configures a DB.
type Options struct {
	// Platform configures the simulated PM device; the zero value is
	// pmem.DefaultConfig (256 MB pool, 8 MB cache, eADR).
	Platform pmem.Config
	// Index configures the Spash index itself; the zero value matches
	// the paper's defaults (HTM concurrency, adaptive updates,
	// compacted-flush insertion, pipeline depth 4, 8K-entry hotspot
	// detector).
	Index core.Config
}

// DB is a Spash index together with the simulated platform it lives
// on. All methods are safe for concurrent use; per-worker state lives
// in Sessions.
type DB struct {
	pool  *pmem.Pool
	alloc *alloc.Allocator
	ix    *core.Index
	ctx   *pmem.Ctx
}

// Open creates a fresh index on a newly provisioned simulated PM
// device.
func Open(opts Options) (*DB, error) {
	pool := pmem.New(opts.Platform)
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		return nil, fmt.Errorf("spash: formatting pool: %w", err)
	}
	ix, err := core.Open(c, pool, al, opts.Index)
	if err != nil {
		return nil, fmt.Errorf("spash: creating index: %w", err)
	}
	return &DB{pool: pool, alloc: al, ix: ix, ctx: c}, nil
}

// Recover reopens an index on an existing device, e.g. after Crash.
// The volatile directory, allocator free lists and counters are
// rebuilt from persistent state.
func Recover(platform *pmem.Pool, opts Options) (*DB, error) {
	if platform == nil {
		return nil, errors.New("spash: nil platform")
	}
	c := platform.NewCtx()
	ix, al, err := core.Recover(c, platform, opts.Index)
	if err != nil {
		return nil, fmt.Errorf("spash: recovering index: %w", err)
	}
	return &DB{pool: platform, alloc: al, ix: ix, ctx: c}, nil
}

// Platform returns the simulated PM device (for stats, crash
// injection, and Recover).
func (db *DB) Platform() *pmem.Pool { return db.pool }

// Index returns the underlying core index (advanced use: ablation
// toggles, maintenance operations).
func (db *DB) Index() *core.Index { return db.ix }

// Crash simulates a power failure on the device. With eADR (default)
// the persistent CPU cache is flushed by the reserve energy and
// nothing is lost; with ADR all unflushed cachelines roll back. The DB
// must be quiescent; after Crash the DB is unusable — call Recover on
// Platform().
func (db *DB) Crash() int { return db.pool.Crash() }

// Close releases the DB's resources. The simulated device (and the
// data on it) remains available via Platform().
func (db *DB) Close() {}

// Len returns the number of live key-value pairs.
func (db *DB) Len() int { return db.ix.Len() }

// LoadFactor returns entries / slot capacity — the memory-utilisation
// metric of the paper's Fig 9.
func (db *DB) LoadFactor() float64 { return db.ix.LoadFactor() }

// Stats bundles index counters with platform memory-event counters.
type Stats struct {
	Index  core.Stats
	Memory pmem.Stats
}

// Stats returns a snapshot of index and platform counters.
func (db *DB) Stats() Stats {
	return Stats{Index: db.ix.Stats(), Memory: db.pool.Stats()}
}

// Group exposes the virtual-time serialisation group (benchmarking).
func (db *DB) Group() *vsync.Group { return db.ix.Group() }

// StartScrub launches the online background scrubber: it re-verifies
// segments incrementally through the optimistic read protocol (never
// blocking writers) and, with ScrubOptions.Repair, quarantines damaged
// ones as it finds them. Stop the returned scrubber before Crash or
// process exit.
func (db *DB) StartScrub(opt ScrubOptions) *core.Scrubber { return db.ix.StartScrub(opt) }

// TryShrink halves the directory if every segment's local depth allows
// it (maintenance; see core.Index.TryShrink).
func (db *DB) TryShrink() bool { return db.ix.TryShrink(db.ctx) }

// Session is a per-worker handle: it owns the worker's virtual clock,
// allocator caches (including the compacted-flush chunk) and pipeline
// state. Sessions are not safe for concurrent use; create one per
// goroutine.
type Session struct {
	h *core.Handle
}

// Session returns a new worker session.
func (db *DB) Session() *Session {
	return &Session{h: db.ix.NewHandle(nil)}
}

// Close returns the session's cached resources to the DB.
func (s *Session) Close() { s.h.Close() }

// Ctx returns the session's pmem context (virtual clock + counters).
func (s *Session) Ctx() *pmem.Ctx { return s.h.Ctx() }

// Insert stores key→value, replacing any existing value.
func (s *Session) Insert(key, value []byte) error { return s.h.Insert(key, value) }

// Get looks key up; the value is appended to dst (which may be nil).
func (s *Session) Get(key, dst []byte) (value []byte, found bool, err error) {
	return s.h.Search(key, dst)
}

// Update replaces the value of an existing key (adaptive in-place
// update). Returns false when the key is absent.
func (s *Session) Update(key, value []byte) (bool, error) { return s.h.Update(key, value) }

// Delete removes key, reporting whether it was present.
func (s *Session) Delete(key []byte) (bool, error) { return s.h.Delete(key) }

// Batch types re-exported for pipelined execution (§III-D).
type (
	// Op is one request of a pipelined batch.
	Op = core.BatchOp
	// OpKind selects the operation of a batch request.
	OpKind = core.OpKind
)

// Batch operation kinds.
const (
	OpGet    = core.OpSearch
	OpUpdate = core.OpUpdate
	OpInsert = core.OpInsert
	OpDelete = core.OpDelete
)

// ExecBatch executes ops with pipelined PM reads: the preparation of
// request i+PipelineDepth-1 (directory lookup + asynchronous bucket
// prefetch) is issued before request i executes, overlapping PM read
// latencies.
func (s *Session) ExecBatch(ops []Op) { s.h.ExecBatch(ops) }

// TryMerge attempts to merge the (empty) segment responsible for key
// with its buddy (maintenance after bulk deletes).
func (s *Session) TryMerge(key []byte) bool { return s.h.TryMerge(key) }

// ForEach visits every live key-value pair once (segment-atomic, not a
// global snapshot; see core.Index.ForEach). The byte slices are only
// valid during the callback.
func (s *Session) ForEach(fn func(key, value []byte) bool) error {
	return s.h.Index().ForEach(s.h, fn)
}

// Fsck walks the persistent registry, verifies every live segment
// (checksum seals, per-record CRCs, routing, poison) and — with repair
// — quarantines and rebuilds the damaged ones, reporting salvaged and
// lost keys. The DB should be quiescent; FsckReport.ExitCode gives the
// spash-fsck exit convention (0 clean / 1 repaired / 2 unrecoverable).
func (s *Session) Fsck(repair bool) (*FsckReport, error) { return s.h.Fsck(repair) }
