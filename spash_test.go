package spash

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"spash/internal/pmem"
)

func key64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestPublicAPIBasics(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()

	if err := s.Insert([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("hello"), nil)
	if err != nil || !ok || string(v) != "world" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if found, err := s.Update([]byte("hello"), []byte("there")); err != nil || !found {
		t.Fatalf("Update: %v %v", found, err)
	}
	v, _, _ = s.Get([]byte("hello"), nil)
	if string(v) != "there" {
		t.Fatalf("after update: %q", v)
	}
	if found, err := s.Delete([]byte("hello")); err != nil || !found {
		t.Fatalf("Delete: %v %v", found, err)
	}
	if _, ok, _ := s.Get([]byte("hello"), nil); ok {
		t.Fatal("found after delete")
	}
	if db.Len() != 0 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestPublicAPIRejectsBadSizes(t *testing.T) {
	db, _ := Open(Options{})
	s := db.Session()
	if err := s.Insert(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Insert(bytes.Repeat([]byte{1}, MaxKVLen+1), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := s.Insert([]byte("k"), bytes.Repeat([]byte{1}, MaxKVLen+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestPublicCrashRecover(t *testing.T) {
	db, err := Open(Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	for i := uint64(0); i < 5000; i++ {
		if err := s.Insert(key64(i), key64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	platform := db.Platform()
	if lost := db.Crash(); lost != 0 {
		t.Fatalf("eADR crash lost %d lines", lost)
	}
	db2, err := Recover(platform, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 5000 {
		t.Fatalf("recovered len %d", db2.Len())
	}
	s2 := db2.Session()
	for i := uint64(0); i < 5000; i++ {
		v, ok, _ := s2.Get(key64(i), nil)
		if !ok || binary.LittleEndian.Uint64(v) != i*3 {
			t.Fatalf("key %d", i)
		}
	}
}

func TestPublicStatsExposeMemoryCounters(t *testing.T) {
	db, _ := Open(Options{})
	s := db.Session()
	for i := uint64(0); i < 1000; i++ {
		s.Insert(key64(i), key64(i))
	}
	st := db.Stats()
	if st.Index.Entries != 1000 {
		t.Fatalf("entries %d", st.Index.Entries)
	}
	if st.Memory.CacheMisses == 0 || st.Memory.XPLineWrites == 0 {
		t.Fatalf("memory counters empty: %+v", st.Memory)
	}
}

func TestPublicConcurrentSessions(t *testing.T) {
	db, _ := Open(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			for i := 0; i < 2000; i++ {
				k := key64(uint64(w*2000 + i))
				if err := s.Insert(k, k); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != 8000 {
		t.Fatalf("len = %d", db.Len())
	}
}

func TestPublicBatch(t *testing.T) {
	db, _ := Open(Options{})
	s := db.Session()
	ops := make([]Op, 100)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Key: key64(uint64(i)), Value: key64(uint64(i))}
	}
	s.ExecBatch(ops)
	gets := make([]Op, 100)
	for i := range gets {
		gets[i] = Op{Kind: OpGet, Key: key64(uint64(i))}
	}
	s.ExecBatch(gets)
	for i := range gets {
		if !gets[i].Found {
			t.Fatalf("op %d not found", i)
		}
	}
}

// Property: arbitrary byte keys and values round-trip.
func TestPublicRoundTripProperty(t *testing.T) {
	db, _ := Open(Options{})
	s := db.Session()
	i := 0
	f := func(suffix []byte, val []byte) bool {
		i++
		if len(val) > 4096 {
			val = val[:4096]
		}
		key := append([]byte(fmt.Sprintf("k%06d-", i)), suffix...)
		if len(key) > 4096 {
			key = key[:4096]
		}
		if err := s.Insert(key, val); err != nil {
			return false
		}
		got, ok, err := s.Get(key, nil)
		return err == nil && ok && bytes.Equal(got, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicADRMode(t *testing.T) {
	cfg := pmem.DefaultConfig()
	cfg.Mode = pmem.ADR
	db, err := Open(Options{Platform: cfg})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	for i := uint64(0); i < 100; i++ {
		if err := s.Insert(key64(i), key64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// ADR platform works while powered; durability without flushes is
	// what it lacks (covered by core tests).
	if db.Len() != 100 {
		t.Fatalf("len %d", db.Len())
	}
}

func TestForEachVisitsEverything(t *testing.T) {
	db, _ := Open(Options{})
	s := db.Session()
	want := map[string]string{}
	for i := uint64(0); i < 5000; i++ {
		k := string(key64(i))
		v := string(key64(i * 7))
		want[k] = v
		if err := s.Insert([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	err := s.ForEach(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: %q != %q", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	s.ForEach(func(k, v []byte) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}
